package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/engine"
	"lightor/internal/perf"
	"lightor/internal/play"
	"lightor/internal/sim"
	"lightor/internal/stats"
)

// testEngine builds an engine-backed test fixture and drains it on
// cleanup.
func testEngine(t *testing.T, init *core.Initializer) *engine.Engine {
	t.Helper()
	ext, err := core.NewExtractor(core.DefaultExtractorConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(init, ext, engine.Config{Warmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Close(ctx); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return eng
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	if err := s.PutVideo(VideoRecord{}); err == nil {
		t.Error("empty ID accepted")
	}
	log := chat.NewLog([]chat.Message{{Time: 1, Text: "hi"}})
	if err := s.PutVideo(VideoRecord{ID: "v1", Duration: 100, Chat: log}); err != nil {
		t.Fatal(err)
	}
	if !s.HasChat("v1") {
		t.Error("HasChat(v1) = false")
	}
	if s.HasChat("v2") {
		t.Error("HasChat(v2) = true")
	}
	rec, ok := s.Video("v1")
	if !ok || rec.Duration != 100 {
		t.Errorf("Video(v1) = %+v, %v", rec, ok)
	}
	if ids := s.VideoIDs(); len(ids) != 1 || ids[0] != "v1" {
		t.Errorf("VideoIDs = %v", ids)
	}
}

func TestStoreDeepCopySemantics(t *testing.T) {
	s := NewStore()
	dots := []core.RedDot{{Time: 50, Score: 0.9}}
	spans := []core.Interval{{Start: 45, End: 60}}
	if err := s.PutVideo(VideoRecord{ID: "v1", Duration: 100, RedDots: dots, Boundaries: spans}); err != nil {
		t.Fatal(err)
	}
	// Mutating the caller's slices after Put must not reach the store.
	dots[0].Time = 999
	spans[0].Start = 999
	rec, _ := s.Video("v1")
	if rec.RedDots[0].Time != 50 || rec.Boundaries[0].Start != 45 {
		t.Errorf("PutVideo aliased caller slices: %+v", rec)
	}
	// Mutating a returned record must not reach the store either.
	rec.RedDots[0].Time = 777
	rec.Boundaries[0].End = 777
	again, _ := s.Video("v1")
	if again.RedDots[0].Time != 50 || again.Boundaries[0].End != 60 {
		t.Errorf("Video returned aliased storage: %+v", again)
	}
}

func TestStoreConcurrentAccess(t *testing.T) {
	// Hammer the sharded store from many goroutines; run with -race.
	s := NewStore()
	const videos = 64
	var wg sync.WaitGroup
	for i := 0; i < videos; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("v%02d", i)
			if err := s.PutVideo(VideoRecord{ID: id, Duration: 100}); err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < 20; j++ {
				if err := s.SetRedDots(id, []core.RedDot{{Time: float64(j)}}); err != nil {
					t.Error(err)
				}
				if err := s.LogEvents(id, []play.Event{{User: "u", Seq: j, Type: play.EventPlay, Pos: float64(j)}}); err != nil {
					t.Error(err)
				}
				rec, ok := s.Video(id)
				if !ok || rec.ID != id {
					t.Errorf("Video(%s) = %+v, %v", id, rec, ok)
				}
				s.Events(id)
			}
		}(i)
	}
	wg.Wait()
	if got := len(s.VideoIDs()); got != videos {
		t.Errorf("VideoIDs = %d, want %d", got, videos)
	}
}

func TestStoreRedDotsAndEvents(t *testing.T) {
	s := NewStore()
	if err := s.SetRedDots("nope", nil); err == nil {
		t.Error("SetRedDots on unknown video accepted")
	}
	if err := s.LogEvents("nope", nil); err == nil {
		t.Error("LogEvents on unknown video accepted")
	}
	if err := s.PutVideo(VideoRecord{ID: "v1", Duration: 100}); err != nil {
		t.Fatal(err)
	}
	dots := []core.RedDot{{Time: 50, Score: 0.9}}
	if err := s.SetRedDots("v1", dots); err != nil {
		t.Fatal(err)
	}
	events := []play.Event{
		{User: "u", Seq: 0, Type: play.EventPlay, Pos: 48},
		{User: "u", Seq: 1, Type: play.EventStop, Pos: 70},
	}
	if err := s.LogEvents("v1", events); err != nil {
		t.Fatal(err)
	}
	plays := s.Plays("v1")
	if len(plays) != 1 || plays[0].Start != 48 {
		t.Errorf("Plays = %v", plays)
	}
	// Returned slices must be copies.
	got := s.Events("v1")
	got[0].Pos = 999
	if s.Events("v1")[0].Pos == 999 {
		t.Error("Events returned aliased storage")
	}
}

func TestSimTwitchAndCrawler(t *testing.T) {
	tw := NewSimTwitch()
	log := chat.NewLog([]chat.Message{
		{Time: 1, User: "a", Text: "hello"},
		{Time: 2, User: "b", Text: "nice kill"},
	})
	tw.AddVideo(TwitchVideo{ID: "vid1", Channel: "chan1", Duration: 600, Viewers: 1200}, log)
	tw.AddVideo(TwitchVideo{ID: "vid2", Channel: "chan1", Duration: 900, Viewers: 800}, chat.NewLog(nil))

	srv := httptest.NewServer(tw.Handler())
	defer srv.Close()

	store := NewStore()
	crawler := &Crawler{BaseURL: srv.URL, Store: store}

	channels, err := crawler.Channels()
	if err != nil {
		t.Fatal(err)
	}
	if len(channels) != 1 || channels[0] != "chan1" {
		t.Fatalf("channels = %v", channels)
	}

	n, err := crawler.CrawlChannels(channels)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("crawled = %d, want 2", n)
	}
	rec, ok := store.Video("vid1")
	if !ok || rec.Chat.Len() != 2 {
		t.Errorf("vid1 not stored correctly: %+v", rec)
	}

	// Re-crawl is a no-op.
	n, err = crawler.CrawlChannels(channels)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("re-crawl fetched %d videos, want 0", n)
	}
}

func TestCrawlerErrors(t *testing.T) {
	tw := NewSimTwitch()
	srv := httptest.NewServer(tw.Handler())
	defer srv.Close()
	crawler := &Crawler{BaseURL: srv.URL, Store: NewStore()}
	if _, err := crawler.Videos("ghost"); err == nil {
		t.Error("unknown channel accepted")
	}
	if err := crawler.CrawlVideo(TwitchVideo{ID: "ghost"}); err == nil {
		t.Error("unknown video accepted")
	}
}

// trainedInitializer builds a minimal trained initializer for service
// tests — the shared perf-package recipe.
func trainedInitializer(t *testing.T) (*core.Initializer, sim.VideoData) {
	t.Helper()
	init, target, err := perf.TrainedFixture()
	if err != nil {
		t.Fatal(err)
	}
	return init, target
}

func TestServiceEndToEnd(t *testing.T) {
	init, target := trainedInitializer(t)
	store := NewStore()
	if err := store.PutVideo(VideoRecord{
		ID:       target.Video.ID,
		Duration: target.Video.Duration,
		Chat:     target.Chat.Log,
	}); err != nil {
		t.Fatal(err)
	}
	svc := &Service{
		Store:  store,
		Engine: testEngine(t, init),
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Health check.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Fetch highlights.
	resp, err = http.Get(srv.URL + "/api/highlights?video=" + target.Video.ID + "&k=5")
	if err != nil {
		t.Fatal(err)
	}
	var hr HighlightsResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hr.Dots) == 0 {
		t.Fatal("no red dots served")
	}

	// Report interactions of simulated viewers around the first dot.
	rng := stats.NewRand(7)
	h, _ := sim.NearestHighlight(target.Video, hr.Dots[0].Time)
	var events []play.Event
	for i := 0; i < 10; i++ {
		events = append(events, sim.SimulateViewer(rng, "u", target.Video, hr.Dots[0].Time, h, sim.DefaultViewerBehavior())...)
	}
	body, err := json.Marshal(events)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(srv.URL+"/api/interactions?video="+target.Video.ID, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("interactions status = %d", resp.StatusCode)
	}

	// Trigger refinement: the endpoint enqueues a background job and
	// returns 202; the client polls the job until it completes.
	resp, err = http.Post(srv.URL+"/api/refine?video="+target.Video.ID, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("refine status = %d, want 202", resp.StatusCode)
	}
	var job RefineJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if job.Job == "" {
		t.Fatal("refine returned no job id")
	}

	var refined RefineJobResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err = http.Get(srv.URL + "/api/refine/status?job=" + job.Job)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(resp.Body).Decode(&refined); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if refined.Status == engine.JobDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refine job stuck in status %q", refined.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(refined.Boundaries) != len(hr.Dots) {
		t.Errorf("boundaries = %d, want %d", len(refined.Boundaries), len(hr.Dots))
	}

	// The completed job also persisted refined state to the store.
	rec, ok := store.Video(target.Video.ID)
	if !ok || len(rec.Boundaries) != len(hr.Dots) {
		t.Errorf("store boundaries = %d, want %d", len(rec.Boundaries), len(hr.Dots))
	}
}

func TestServiceLiveEndpoints(t *testing.T) {
	init, target := trainedInitializer(t)
	svc := &Service{
		Store:  NewStore(),
		Engine: testEngine(t, init),
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	msgs := target.Chat.Log.Messages()
	if len(msgs) < 100 {
		t.Fatalf("simulated chat too small: %d messages", len(msgs))
	}

	post := func(path string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Stream the first half, then the second half, as a live channel.
	half := len(msgs) / 2
	for _, batch := range [][]chat.Message{msgs[:half], msgs[half:]} {
		body, err := json.Marshal(batch)
		if err != nil {
			t.Fatal(err)
		}
		resp := post("/api/live/chat?channel=streamer", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("live chat status = %d, want 202", resp.StatusCode)
		}
	}

	// Past-the-end clock advance finalizes the remaining windows.
	resp := post("/api/live/advance?channel=streamer&now=1e9", nil)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("advance status = %d, want 202", resp.StatusCode)
	}

	// Poll until the asynchronous mailbox has drained and dots appear.
	var dots LiveDotsResponse
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/api/live/dots?channel=streamer")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&dots); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if len(dots.Dots) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(dots.Dots) == 0 {
		t.Fatal("live session emitted no dots")
	}

	// Cursor-based polling returns only fresh dots: nothing new after the
	// stream went quiet.
	r, err := http.Get(srv.URL + "/api/live/dots?channel=streamer&cursor=" + strconv.Itoa(dots.Cursor))
	if err != nil {
		t.Fatal(err)
	}
	var fresh LiveDotsResponse
	if err := json.NewDecoder(r.Body).Decode(&fresh); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(fresh.Dots) != 0 {
		t.Errorf("cursor poll returned %d stale dots", len(fresh.Dots))
	}

	// Out-of-order chat is rejected with 409 and does not kill the session.
	body, err := json.Marshal([]chat.Message{{Time: 0, Text: "stale"}})
	if err != nil {
		t.Fatal(err)
	}
	resp = post("/api/live/chat?channel=streamer", body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("out-of-order chat status = %d, want 409", resp.StatusCode)
	}

	// Closing the broadcast flushes, returns the emission history, and
	// frees the channel for a fresh session with a reset clock.
	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/live/session?channel=streamer", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var closed LiveDotsResponse
	if err := json.NewDecoder(resp.Body).Decode(&closed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(closed.Dots) == 0 {
		t.Error("session close returned no emission history")
	}
	r2, err := http.Get(srv.URL + "/api/live/dots?channel=streamer")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusNotFound {
		t.Errorf("dots after close = %d, want 404", r2.StatusCode)
	}
	resp = post("/api/live/chat?channel=streamer", body) // time 0 is valid again
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("re-ingest after close status = %d, want 202", resp.StatusCode)
	}
}

func TestServiceErrorPaths(t *testing.T) {
	init, _ := trainedInitializer(t)
	svc := &Service{
		Store:  NewStore(),
		Engine: testEngine(t, init),
	}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	cases := []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/api/highlights", http.StatusBadRequest},
		{"GET", "/api/highlights?video=ghost", http.StatusNotFound},
		{"GET", "/api/highlights?video=ghost&k=bogus", http.StatusBadRequest},
		{"POST", "/api/interactions", http.StatusBadRequest},
		{"POST", "/api/refine", http.StatusBadRequest},
		{"POST", "/api/refine?video=ghost", http.StatusNotFound},
		{"GET", "/api/refine/status", http.StatusBadRequest},
		{"GET", "/api/refine/status?job=ghost", http.StatusNotFound},
		{"POST", "/api/live/chat", http.StatusBadRequest},
		{"POST", "/api/live/advance?channel=ghost&now=10", http.StatusNotFound},
		{"POST", "/api/live/advance?channel=ghost&now=bogus", http.StatusBadRequest},
		{"GET", "/api/live/dots", http.StatusBadRequest},
		{"GET", "/api/live/dots?channel=ghost", http.StatusNotFound},
		{"DELETE", "/api/live/session", http.StatusBadRequest},
		{"DELETE", "/api/live/session?channel=ghost", http.StatusNotFound},
	}
	for _, c := range cases {
		req, err := http.NewRequest(c.method, srv.URL+c.path, bytes.NewReader([]byte("[]")))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s %s = %d, want %d", c.method, c.path, resp.StatusCode, c.wantStatus)
		}
	}
}
