package platform

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lightor/internal/engine"
)

// Push delivery: the versioned SSE broadcast hub.
//
// Polling (PR 5) made reads cheap but kept the per-viewer round trip: at
// steady state >99.9% of poll traffic is bodyless 304s — pure overhead.
// The hub inverts the flow. The engine reports every dot-snapshot
// publication through engine.DotListener; the hub encodes the new delta
// EXACTLY ONCE per version — through the same respCache path conditional
// GETs serve from, so pollers and push subscribers share the encoded
// bytes — wraps it in one SSE frame, and fans the same immutable []byte
// out to every subscriber of the channel. Fan-out cost per version is
// O(subscribers) pointer enqueues; encode cost is O(1).
//
// Slow-client policy (drop-and-resync): each subscriber owns a small
// fixed-capacity frame ring. When a burst outruns a subscriber, the hub
// drops that subscriber's ENTIRE queue and marks it lagged; the next read
// rebuilds a single coalesced delta from the subscriber's last delivered
// cursor via the conditional-GET cache path. The subscriber skips the
// intermediate versions and lands directly on the newest one — exactly
// the coalescing a poller gets for free, without unbounded buffering.
// Subscribers sharing a cursor share the resync encoding too (same cache
// key), so even a mass resync stays O(distinct cursors) encodes.
//
// A gap can therefore never be silent: delivered frames always start
// exactly at the subscriber's cursor, in version order. Session close
// (DELETE /api/live/session, engine CloseSession) and server drain
// propagate as a terminal "end" frame, after which the stream is done.

// Default knobs; see the corresponding Service fields.
const (
	defaultPushQueueLen    = 32
	defaultPushHeartbeat   = 15 * time.Second
	defaultMaxSubscribers  = 1 << 20
	pushRetryAfterSeconds  = "5"
	drainRetryAfterSeconds = "30"
)

// Errors surfaced by SubscribeDots; ServeLiveStream maps both to
// 503 + Retry-After.
var (
	// ErrTooManySubscribers reports the -max-subscribers cap is reached.
	ErrTooManySubscribers = errors.New("platform: too many push subscribers")
	// ErrPushDraining reports the hub has shut down (server drain).
	ErrPushDraining = errors.New("platform: push delivery is draining")
)

// PushFrame is one pre-encoded SSE frame. Data is immutable and shared by
// every subscriber it is delivered to; [Start, End) is the cursor window
// of dots the frame carries and Version the dot-snapshot version it was
// encoded at. A Terminal frame ("end" event) is the stream's last.
type PushFrame struct {
	Data     []byte
	Start    int
	End      int
	Version  uint64
	Terminal bool
}

// LiveStreamEndEvent is the payload of the terminal "end" SSE event on
// GET /api/live/stream: the final cursor and why the stream ended
// ("closed" — the broadcast was closed; "draining" — the server is
// shutting down; reconnect elsewhere).
type LiveStreamEndEvent struct {
	Channel string `json:"channel"`
	Cursor  int    `json:"cursor"`
	Reason  string `json:"reason"`
}

// PushStats is a snapshot of the hub's delivery counters.
type PushStats struct {
	Subscribers int64  // currently registered subscribers
	Versions    uint64 // dot versions broadcast
	Encodes     uint64 // JSON encodes performed (broadcast + resync)
	Deliveries  uint64 // frames enqueued to subscribers
	Drops       uint64 // subscriber queue overflows (each followed by a resync)
	Resyncs     uint64 // coalesced catch-up frames built
}

// dotHub is the per-process broadcast hub. It implements
// engine.DotListener; the Service registers it once (initPush) and the
// engine's mailbox workers call DotsPublished synchronously after each
// snapshot swap, so broadcasts for one channel are naturally serialized
// and ordered.
type dotHub struct {
	svc *Service

	mu     sync.Mutex
	chans  map[string]*channelHub
	closed bool

	nsubs      atomic.Int64
	versions   atomic.Uint64
	encodes    atomic.Uint64
	deliveries atomic.Uint64
	drops      atomic.Uint64
	resyncs    atomic.Uint64
}

// channelHub is the subscriber registry for one channel. tip is the
// cursor already broadcast: the next version's frame carries exactly
// [tip, newTip), so a subscriber that keeps up never receives a dot
// twice and never misses one.
type channelHub struct {
	channel string
	sess    *engine.Session

	mu   sync.Mutex
	tip  int
	subs []*DotStream
}

// DotsPublished implements engine.DotListener: encode the delta since the
// channel's broadcast tip once, fan the frame out. Channels nobody
// subscribes to (including the engine's internal replay sessions) cost
// one map lookup and nothing else.
func (h *dotHub) DotsPublished(sess *engine.Session) {
	h.mu.Lock()
	ch := h.chans[sess.Channel()]
	h.mu.Unlock()
	if ch == nil || ch.sess != sess {
		return
	}
	ch.mu.Lock()
	defer ch.mu.Unlock()
	e, ck, next, ver, encoded, err := h.svc.liveDotsEntry(sess, ch.channel, ch.tip)
	if err != nil || next <= ch.tip {
		return
	}
	if encoded {
		h.encodes.Add(1)
	}
	f := &PushFrame{Start: ck, End: next, Version: ver}
	f.Data = dotsFrame(e, next)
	h.versions.Add(1)
	var delivered, dropped uint64
	for _, sub := range ch.subs {
		if sub.enqueue(f) {
			delivered++
		} else {
			dropped++
		}
	}
	h.deliveries.Add(delivered)
	h.drops.Add(dropped)
	ch.tip = next
}

// SessionClosed implements engine.DotListener: drop the channel's
// registry and terminate every subscriber with the "end" event. The final
// flush dots were reported through DotsPublished first, so terminated
// subscribers still observe the full history (a queue overflowed by the
// final burst resyncs before the terminal frame is surfaced).
func (h *dotHub) SessionClosed(channel string) {
	// Teardown order matters across a handoff: this hook runs inside
	// CloseSession/DetachSession, BEFORE the channel becomes routable to
	// a new owner (the handoff pins its route only after detach returns).
	// Dropping the response-cache entries first and then ending every
	// push subscriber ("end: closed") guarantees no viewer is served a
	// stale catch-up frame for a channel that has already moved — by the
	// time any router points elsewhere, this node holds no cached frames
	// and no live subscriptions for the channel.
	h.svc.dotsCache.drop(channel)
	h.mu.Lock()
	ch := h.chans[channel]
	delete(h.chans, channel)
	h.mu.Unlock()
	if ch != nil {
		h.terminate(ch, "closed")
	}
}

// terminate delivers the terminal frame to every subscriber of ch and
// empties its registry.
func (h *dotHub) terminate(ch *channelHub, reason string) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	f := &PushFrame{Terminal: true, Start: ch.tip, End: ch.tip}
	f.Data = endFrame(ch.channel, ch.tip, reason)
	for _, sub := range ch.subs {
		sub.terminate(f)
	}
	ch.subs = nil
}

// dotsFrame wraps a cached live-dots entry into a "dots" SSE frame. The
// frame id is the new cursor, so EventSource auto-reconnect (which echoes
// the last id as Last-Event-ID) resumes exactly where delivery stopped.
func dotsFrame(e *cacheEntry, next int) []byte {
	body := e.body
	if n := len(body); n > 0 && body[n-1] == '\n' {
		body = body[:n-1] // encoder's trailing newline; the frame adds its own
	}
	var idBuf [20]byte
	id := strconv.AppendInt(idBuf[:0], int64(next), 10)
	return appendSSEFrame(make([]byte, 0, len(body)+len(id)+24), "dots", string(id), body)
}

// endFrame builds the terminal "end" SSE frame. Cold path (once per
// subscriber lifetime), so it just uses encoding/json.
func endFrame(channel string, cursor int, reason string) []byte {
	body, err := json.Marshal(LiveStreamEndEvent{Channel: channel, Cursor: cursor, Reason: reason})
	if err != nil { // unreachable: the struct is plain strings and ints
		body = []byte("{}")
	}
	return appendSSEFrame(make([]byte, 0, len(body)+32), "end", strconv.Itoa(cursor), body)
}

// DotStream is one subscriber's view of a channel's push delivery. It is
// single-consumer: exactly one goroutine calls Pop (the SSE handler, a
// benchmark subscriber); any number of hub goroutines enqueue into it.
type DotStream struct {
	hub     *dotHub
	sess    *engine.Session
	channel string

	// notify is the readiness signal (capacity 1, never closed); done
	// closes when a terminal frame is queued.
	notify chan struct{}
	done   chan struct{}

	mu      sync.Mutex
	buf     []*PushFrame // fixed-capacity frame ring
	head, n int
	cur     int    // dots delivered so far (the subscriber's cursor)
	lastVer uint64 // last delivered version
	lagged  bool   // queue overflowed (or fresh subscription): resync on next Pop
	closed  bool
	idx     int // position in channelHub.subs, for O(1) removal
}

// Ready returns a channel that receives a token when frames may be
// available; pair it with Pop in a select loop.
func (ds *DotStream) Ready() <-chan struct{} { return ds.notify }

// Done returns a channel closed once a terminal frame has been queued:
// after draining Pop, the stream is over.
func (ds *DotStream) Done() <-chan struct{} { return ds.done }

// Cursor returns how many dots have been delivered so far.
func (ds *DotStream) Cursor() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.cur
}

// enqueue offers a broadcast frame, reporting whether it was queued.
// Called with channelHub.mu held (broadcasts for one channel are
// serialized); ds.mu is what synchronizes against the consumer.
func (ds *DotStream) enqueue(f *PushFrame) bool {
	ds.mu.Lock()
	queued := false
	switch {
	case ds.closed || ds.lagged:
		// Already terminal, or already resyncing — the resync delta will
		// cover this frame's dots too.
	case ds.n == len(ds.buf):
		// Overflow: drop-and-resync. Everything queued is superseded by
		// one coalesced delta from ds.cur, so shed it all at once.
		ds.head, ds.n = 0, 0
		ds.lagged = true
	default:
		ds.buf[(ds.head+ds.n)%len(ds.buf)] = f
		ds.n++
		queued = true
	}
	ds.mu.Unlock()
	select {
	case ds.notify <- struct{}{}:
	default:
	}
	return queued
}

// terminate queues the terminal frame (making room by shedding queued
// frames into the lagged/resync path if the ring is full), closes done,
// and deregisters the subscriber from the hub's count.
func (ds *DotStream) terminate(f *PushFrame) {
	ds.mu.Lock()
	if ds.closed {
		ds.mu.Unlock()
		return
	}
	ds.closed = true
	if ds.n == len(ds.buf) {
		ds.head, ds.n = 0, 0
		ds.lagged = true
	}
	ds.buf[(ds.head+ds.n)%len(ds.buf)] = f
	ds.n++
	ds.mu.Unlock()
	ds.hub.nsubs.Add(-1)
	close(ds.done)
	select {
	case ds.notify <- struct{}{}:
	default:
	}
}

// Pop returns the next frame to write, or (nil, false) when the queue is
// momentarily empty — wait on Ready/Done and call again. Delivered frames
// are gap-free and version-monotonic by construction: a frame that does
// not start exactly at the subscriber's cursor is discarded and replaced
// by a coalesced resync delta built from the cursor through the
// conditional-GET cache path.
func (ds *DotStream) Pop() (*PushFrame, bool) {
	ds.mu.Lock()
	for {
		// Resync before surfacing a terminal frame: the terminal frame may
		// have shed queued dots, and history must be complete first.
		if ds.lagged && (ds.n == 0 || ds.buf[ds.head].Terminal) {
			ds.lagged = false
			cursor := ds.cur
			ds.mu.Unlock()
			if f := ds.resync(cursor); f != nil {
				return f, true
			}
			ds.mu.Lock()
			continue
		}
		if ds.n == 0 {
			ds.mu.Unlock()
			return nil, false
		}
		f := ds.buf[ds.head]
		ds.buf[ds.head] = nil
		ds.head = (ds.head + 1) % len(ds.buf)
		ds.n--
		switch {
		case f.Terminal:
			ds.mu.Unlock()
			return f, true
		case f.End <= ds.cur:
			// Already covered by an earlier resync; skip.
		case f.Start > ds.cur:
			// Gap (frames shed between resync and now): rebuild from cur.
			ds.lagged = true
		default:
			ds.cur = f.End
			ds.lastVer = f.Version
			ds.mu.Unlock()
			return f, true
		}
	}
}

// resync builds one coalesced delta frame from cursor to the session's
// current tip — the conditional-GET path, so concurrent resyncers at the
// same cursor share a single encode. Returns nil when there is nothing
// newer than cursor (or the encode failed); the caller re-checks the
// queue.
func (ds *DotStream) resync(cursor int) *PushFrame {
	h := ds.hub
	h.resyncs.Add(1)
	e, ck, next, ver, encoded, err := h.svc.liveDotsEntry(ds.sess, ds.channel, cursor)
	if err != nil {
		return nil
	}
	if encoded {
		h.encodes.Add(1)
	}
	ds.mu.Lock()
	if next <= ds.cur {
		ds.mu.Unlock()
		return nil
	}
	ds.cur = next
	if ver > ds.lastVer {
		ds.lastVer = ver
	}
	ds.mu.Unlock()
	h.deliveries.Add(1)
	f := &PushFrame{Start: ck, End: next, Version: ver}
	f.Data = dotsFrame(e, next)
	return f
}

// Close deregisters the subscriber. Idempotent; safe after terminate.
func (ds *DotStream) Close() {
	h := ds.hub
	h.mu.Lock()
	if ch := h.chans[ds.channel]; ch != nil {
		ch.mu.Lock()
		if ds.idx < len(ch.subs) && ch.subs[ds.idx] == ds {
			last := len(ch.subs) - 1
			ch.subs[ds.idx] = ch.subs[last]
			ch.subs[ds.idx].idx = ds.idx
			ch.subs[last] = nil
			ch.subs = ch.subs[:last]
			if len(ch.subs) == 0 {
				delete(h.chans, ds.channel)
			}
		}
		ch.mu.Unlock()
	}
	h.mu.Unlock()
	ds.mu.Lock()
	already := ds.closed
	ds.closed = true
	ds.head, ds.n = 0, 0
	ds.mu.Unlock()
	if !already {
		h.nsubs.Add(-1)
	}
}

// initPush wires the hub to the engine exactly once. Handler and
// SubscribeDots both call it, so embedders get push delivery with either
// entry point.
func (s *Service) initPush() {
	s.pushOnce.Do(func() {
		s.push.svc = s
		if s.Engine != nil {
			s.Engine.Sessions().SetDotListener(&s.push)
		}
	})
}

// SubscribeDots registers a push subscriber on a live channel, starting
// from cursor (clamped to the channel's current history). The first
// frames Pop yields deliver everything from the cursor to the tip via a
// coalesced resync; subsequent frames arrive as the engine publishes
// versions. The caller must Close the stream when done.
func (s *Service) SubscribeDots(channel string, cursor int) (*DotStream, error) {
	s.initPush()
	h := &s.push
	sess, ok := s.Engine.Sessions().Get(channel)
	if !ok {
		return nil, fmt.Errorf("%w: %q", engine.ErrUnknownSession, channel)
	}
	if cursor < 0 {
		cursor = 0
	}
	if h.nsubs.Add(1) > int64(s.maxSubscribers()) {
		h.nsubs.Add(-1)
		return nil, ErrTooManySubscribers
	}
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		h.nsubs.Add(-1)
		return nil, ErrPushDraining
	}
	ch := h.chans[channel]
	if ch != nil && ch.sess != sess {
		// Stale registry from a predecessor broadcast that was closed
		// without notification (possible for embedders driving Session
		// directly): terminate its subscribers and start fresh.
		delete(h.chans, channel)
		go h.terminate(ch, "closed")
		ch = nil
	}
	if ch == nil {
		_, tip, _ := sess.DotsPage(0)
		ch = &channelHub{channel: channel, sess: sess, tip: tip}
		if h.chans == nil {
			h.chans = make(map[string]*channelHub)
		}
		h.chans[channel] = ch
	}
	ch.mu.Lock()
	// Joining subscribers start lagged: their first Pop resyncs from their
	// own cursor up to whatever the broadcast tip is by then, after which
	// queued frames splice on exactly.
	ds := &DotStream{
		hub:     h,
		sess:    sess,
		channel: channel,
		notify:  make(chan struct{}, 1),
		done:    make(chan struct{}),
		buf:     make([]*PushFrame, s.pushQueueLen()),
		cur:     min(cursor, ch.tip),
		lagged:  true,
		idx:     len(ch.subs),
	}
	ch.subs = append(ch.subs, ds)
	ch.mu.Unlock()
	h.mu.Unlock()
	ds.notify <- struct{}{}
	return ds, nil
}

// ClosePush terminates every push subscriber with a terminal "end" frame
// (reason "draining") and rejects new subscriptions — the SIGTERM path:
// call it before http.Server.Shutdown, or active SSE responses would hold
// the graceful shutdown open forever.
func (s *Service) ClosePush() {
	s.initPush()
	h := &s.push
	h.mu.Lock()
	h.closed = true
	chans := h.chans
	h.chans = nil
	h.mu.Unlock()
	for _, ch := range chans {
		h.terminate(ch, "draining")
	}
}

// pushDraining reports whether ClosePush has run — the drain state
// surfaced by GET /api/healthz.
func (s *Service) pushDraining() bool {
	h := &s.push
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.closed
}

// PushStats snapshots the hub's delivery counters.
func (s *Service) PushStats() PushStats {
	h := &s.push
	return PushStats{
		Subscribers: h.nsubs.Load(),
		Versions:    h.versions.Load(),
		Encodes:     h.encodes.Load(),
		Deliveries:  h.deliveries.Load(),
		Drops:       h.drops.Load(),
		Resyncs:     h.resyncs.Load(),
	}
}

func (s *Service) maxSubscribers() int {
	if s.MaxSubscribers > 0 {
		return s.MaxSubscribers
	}
	return defaultMaxSubscribers
}

func (s *Service) pushQueueLen() int {
	if s.PushQueueLen > 0 {
		return s.PushQueueLen
	}
	return defaultPushQueueLen
}

func (s *Service) pushHeartbeat() time.Duration {
	if s.PushHeartbeat > 0 {
		return s.PushHeartbeat
	}
	return defaultPushHeartbeat
}

// handleLiveStream parses GET /api/live/stream. The cursor comes from the
// query, or — on EventSource auto-reconnect — from Last-Event-ID, which
// echoes the id of the last frame the client received (always the cursor
// it advanced the client to), so reconnects resume without duplication.
func (s *Service) handleLiveStream(w http.ResponseWriter, r *http.Request) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		http.Error(w, "missing channel parameter", http.StatusBadRequest)
		return
	}
	// Redirected (not proxied): an SSE response is long-lived, and
	// relaying it would pin forwarder resources on the wrong node for the
	// whole broadcast. 307 repeats the request verbatim, so Last-Event-ID
	// survives and resumes land at the right cursor on the owner.
	if !s.route(w, r, channel, routeRedirect) {
		return
	}
	cursor := 0
	cq := r.URL.Query().Get("cursor")
	if cq == "" {
		cq = r.Header.Get("Last-Event-ID")
	}
	if cq != "" {
		parsed, err := strconv.Atoi(cq)
		if err != nil || parsed < 0 {
			http.Error(w, "invalid cursor", http.StatusBadRequest)
			return
		}
		cursor = parsed
	}
	s.ServeLiveStream(w, r, channel, cursor)
}

// ServeLiveStream streams the channel's dots from cursor onward as SSE
// until the client disconnects, the broadcast closes, or the server
// drains — the push lane behind GET /api/live/stream. Frames:
//
//	event: dots  — a LiveDotsResponse delta; id is the new cursor
//	event: end   — terminal LiveStreamEndEvent; the stream is over
//	: hb         — comment heartbeat every PushHeartbeat, keeps
//	               intermediaries from idling the connection out
//
// The response writer must support flushing (http.ResponseController /
// an Unwrap chain reaching http.Flusher); otherwise the request fails
// up front rather than buffering silently forever.
func (s *Service) ServeLiveStream(w http.ResponseWriter, r *http.Request, channel string, cursor int) {
	if !flushableWriter(w) {
		http.Error(w, "streaming unsupported: response writer cannot flush", http.StatusInternalServerError)
		return
	}
	ds, err := s.SubscribeDots(channel, cursor)
	switch {
	case errors.Is(err, engine.ErrUnknownSession):
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	case errors.Is(err, ErrTooManySubscribers):
		s.shed.subscribers.Add(1)
		shedError(w, http.StatusServiceUnavailable, pushRetryAfterSeconds, "subscribers", err.Error())
		return
	case errors.Is(err, ErrPushDraining):
		s.shed.draining.Add(1)
		shedError(w, http.StatusServiceUnavailable, drainRetryAfterSeconds, "draining", err.Error())
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	defer ds.Close()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // defeat proxy buffering
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	heartbeat := s.pushHeartbeat()
	write := func(p []byte) bool {
		// Bound the write so one wedged client can't pin the handler
		// (best effort — not every writer supports deadlines).
		_ = rc.SetWriteDeadline(time.Now().Add(2 * heartbeat))
		if _, err := w.Write(p); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	// drain writes everything currently deliverable; it reports whether a
	// terminal frame went out (stream over) and whether the client is
	// still writable.
	drain := func() (terminal, ok bool) {
		for {
			f, ok := ds.Pop()
			if !ok {
				return false, true
			}
			if !write(f.Data) {
				return false, false
			}
			if f.Terminal {
				return true, true
			}
		}
	}
	// Initial catch-up: the subscription starts lagged, so this first
	// drain delivers one coalesced delta from the requested cursor.
	if terminal, ok := drain(); terminal || !ok {
		return
	}
	ticker := time.NewTicker(heartbeat)
	defer ticker.Stop()
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if !write(sseHeartbeat) {
				return
			}
		case <-ds.Ready():
			if terminal, ok := drain(); terminal || !ok {
				return
			}
		case <-ds.Done():
			drain()
			return
		}
	}
}

// sseHeartbeat is the keepalive comment frame.
var sseHeartbeat = []byte(": hb\n\n")

// flushableWriter reports whether w (or anything it wraps, following the
// ResponseController Unwrap convention) can flush written bytes to the
// client — the capability SSE cannot work without.
func flushableWriter(w http.ResponseWriter) bool {
	for {
		if _, ok := w.(http.Flusher); ok {
			return true
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return false
		}
		w = u.Unwrap()
	}
}
