package platform

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"lightor/internal/core"
	"lightor/internal/engine"
)

// sseEvent is one parsed SSE block (either an event or a comment-only
// keepalive).
type sseEvent struct {
	event   string
	id      string
	data    string
	comment bool
}

// readSSEEvent reads one blank-line-terminated block off the stream.
func readSSEEvent(br *bufio.Reader) (sseEvent, error) {
	var ev sseEvent
	sawField := false
	var data []string
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			return ev, err
		}
		line = strings.TrimSuffix(line, "\n")
		if line == "" {
			if !sawField && !ev.comment {
				continue // leading blank lines between blocks
			}
			ev.data = strings.Join(data, "\n")
			ev.comment = !sawField
			return ev, nil
		}
		if strings.HasPrefix(line, ":") {
			ev.comment = true
			continue
		}
		sawField = true
		name, value, _ := strings.Cut(line, ":")
		value = strings.TrimPrefix(value, " ")
		switch name {
		case "event":
			ev.event = value
		case "id":
			ev.id = value
		case "data":
			data = append(data, value)
		}
	}
}

// parsePushFrame decodes a hub frame's bytes through the same SSE rules a
// client applies.
func parsePushFrame(t *testing.T, frame []byte) sseEvent {
	t.Helper()
	ev, err := readSSEEvent(bufio.NewReader(strings.NewReader(string(frame))))
	if err != nil {
		t.Fatalf("parsing frame %q: %v", frame, err)
	}
	return ev
}

// openSSE issues GET /api/live/stream and returns the response plus a
// buffered reader over the event stream. The context bounds every read so
// a broken stream fails the test instead of hanging it.
func openSSE(t *testing.T, ctx context.Context, base, channel string, cursor int) (*http.Response, *bufio.Reader) {
	t.Helper()
	url := fmt.Sprintf("%s/api/live/stream?channel=%s&cursor=%d", base, channel, cursor)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status = %d, body %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return resp, bufio.NewReader(resp.Body)
}

// TestLiveStreamSSEContract drives the documented push contract end to
// end over real HTTP: connecting mid-stream delivers one coalesced
// catch-up frame from the requested cursor, subsequent emissions arrive
// as incremental "dots" events whose id is the new cursor (the
// Last-Event-ID resume point), payloads are byte-compatible
// LiveDotsResponse deltas, and quiet periods carry comment heartbeats.
func TestLiveStreamSSEContract(t *testing.T) {
	init, target := trainedInitializer(t)
	svc := &Service{Store: NewStore(), Engine: liveTestEngine(t, init), PushHeartbeat: 25 * time.Millisecond}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	msgs := target.Chat.Log.Messages()
	if len(msgs) > 2048 {
		msgs = msgs[:2048]
	}
	half := len(msgs) / 2

	ingestLive(t, srv.URL, "push", msgs[:half])
	first := waitCursor(t, srv.URL, "push", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, br := openSSE(t, ctx, srv.URL, "push", 0)
	defer resp.Body.Close()

	// Catch-up: everything from cursor 0 to the current tip in ONE frame.
	ev, err := readSSEEvent(br)
	if err != nil {
		t.Fatal(err)
	}
	if ev.event != "dots" {
		t.Fatalf("first event = %q, want dots", ev.event)
	}
	var catchup LiveDotsResponse
	if err := json.Unmarshal([]byte(ev.data), &catchup); err != nil {
		t.Fatalf("catch-up payload: %v", err)
	}
	if catchup.Channel != "push" || catchup.Cursor < first.Cursor || len(catchup.Dots) != catchup.Cursor {
		t.Fatalf("catch-up = channel %q cursor %d with %d dots, want full history for push",
			catchup.Channel, catchup.Cursor, len(catchup.Dots))
	}
	if ev.id != strconv.Itoa(catchup.Cursor) {
		t.Fatalf("frame id = %q, want the new cursor %d", ev.id, catchup.Cursor)
	}

	// Quiet stream: the next block is a comment heartbeat, not an event.
	hb, err := readSSEEvent(br)
	if err != nil {
		t.Fatal(err)
	}
	if !hb.comment {
		t.Fatalf("expected heartbeat comment during quiet period, got event %+v", hb)
	}

	// Live emission: the second half of the stream arrives incrementally;
	// concatenated deltas must extend exactly from the catch-up cursor.
	ingestLive(t, srv.URL, "push", msgs[half:])
	final := waitCursor(t, srv.URL, "push", catchup.Cursor+1)
	cursor := catchup.Cursor
	got := append([]core.RedDot(nil), catchup.Dots...)
	for cursor < final.Cursor {
		ev, err := readSSEEvent(br)
		if err != nil {
			t.Fatal(err)
		}
		if ev.comment {
			continue
		}
		var delta LiveDotsResponse
		if err := json.Unmarshal([]byte(ev.data), &delta); err != nil {
			t.Fatalf("delta payload: %v", err)
		}
		if len(delta.Dots) != delta.Cursor-cursor {
			t.Fatalf("gap: delta to cursor %d carries %d dots from cursor %d", delta.Cursor, len(delta.Dots), cursor)
		}
		got = append(got, delta.Dots...)
		cursor = delta.Cursor
	}

	// The pushed history must equal what the poll lane serves.
	if cursor != final.Cursor || len(got) != len(final.Dots) {
		t.Fatalf("push converged to %d dots (cursor %d), poll has %d (cursor %d)",
			len(got), cursor, len(final.Dots), final.Cursor)
	}
	for i := range got {
		if got[i] != final.Dots[i] {
			t.Fatalf("push and poll histories diverge at %d: %v vs %v", i, got[i], final.Dots[i])
		}
	}
}

// TestLiveStreamCloseWhileSubscribed pins the satellite-2 contract:
// DELETE /api/live/session must deliver the terminal "end" event to every
// live subscriber — with the final flush-emitted history first — and end
// the response, rather than leaving the connection hanging.
func TestLiveStreamCloseWhileSubscribed(t *testing.T) {
	init, target := trainedInitializer(t)
	svc := &Service{Store: NewStore(), Engine: liveTestEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	msgs := target.Chat.Log.Messages()
	if len(msgs) > 1024 {
		msgs = msgs[:1024]
	}
	ingestLive(t, srv.URL, "closing", msgs)
	waitCursor(t, srv.URL, "closing", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, br := openSSE(t, ctx, srv.URL, "closing", 0)
	defer resp.Body.Close()
	if _, err := readSSEEvent(br); err != nil { // catch-up frame
		t.Fatal(err)
	}

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/api/live/session?channel=closing", nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var finalHist LiveDotsResponse
	if err := json.NewDecoder(delResp.Body).Decode(&finalHist); err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()

	// The subscriber must now observe (possibly a flush delta, then) the
	// terminal event, followed by end-of-stream.
	var end sseEvent
	for {
		ev, err := readSSEEvent(br)
		if err != nil {
			t.Fatalf("stream ended without a terminal event: %v", err)
		}
		if ev.comment || ev.event == "dots" {
			continue
		}
		end = ev
		break
	}
	if end.event != "end" {
		t.Fatalf("terminal event = %q, want end", end.event)
	}
	var payload LiveStreamEndEvent
	if err := json.Unmarshal([]byte(end.data), &payload); err != nil {
		t.Fatal(err)
	}
	if payload.Channel != "closing" || payload.Reason != "closed" || payload.Cursor != finalHist.Cursor {
		t.Fatalf("end payload = %+v, want channel closing, reason closed, cursor %d", payload, finalHist.Cursor)
	}
	if _, err := readSSEEvent(br); err != io.EOF {
		t.Fatalf("stream still open after terminal event (err=%v)", err)
	}
}

// TestLiveStreamDrain pins the SIGTERM path: ClosePush ends every
// subscriber with reason "draining" and rejects new subscriptions with
// 503 + Retry-After.
func TestLiveStreamDrain(t *testing.T) {
	init, target := trainedInitializer(t)
	svc := &Service{Store: NewStore(), Engine: liveTestEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	msgs := target.Chat.Log.Messages()[:512]
	ingestLive(t, srv.URL, "drainme", msgs)
	waitCursor(t, srv.URL, "drainme", 1)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, br := openSSE(t, ctx, srv.URL, "drainme", 0)
	defer resp.Body.Close()
	if _, err := readSSEEvent(br); err != nil { // catch-up
		t.Fatal(err)
	}

	svc.ClosePush()
	for {
		ev, err := readSSEEvent(br)
		if err != nil {
			t.Fatalf("stream ended without terminal event: %v", err)
		}
		if ev.comment || ev.event == "dots" {
			continue
		}
		var payload LiveStreamEndEvent
		if err := json.Unmarshal([]byte(ev.data), &payload); err != nil {
			t.Fatal(err)
		}
		if ev.event != "end" || payload.Reason != "draining" {
			t.Fatalf("drain event = %q reason %q, want end/draining", ev.event, payload.Reason)
		}
		break
	}

	// New subscriptions are refused while draining.
	r, err := http.Get(srv.URL + "/api/live/stream?channel=drainme")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable || r.Header.Get("Retry-After") == "" {
		t.Fatalf("subscribe while draining = %d (Retry-After %q), want 503 with Retry-After",
			r.StatusCode, r.Header.Get("Retry-After"))
	}
}

// TestLiveStreamSubscriberCap pins -max-subscribers: beyond the cap the
// endpoint answers 503 with a Retry-After, and a released slot becomes
// subscribable again.
func TestLiveStreamSubscriberCap(t *testing.T) {
	init, target := trainedInitializer(t)
	svc := &Service{Store: NewStore(), Engine: liveTestEngine(t, init), MaxSubscribers: 1}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	ingestLive(t, srv.URL, "capped", target.Chat.Log.Messages()[:256])
	waitCursor(t, srv.URL, "capped", 0)

	ds, err := svc.SubscribeDots("capped", 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Get(srv.URL + "/api/live/stream?channel=capped")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-cap subscribe = %d, want 503", r.StatusCode)
	}
	if ra := r.Header.Get("Retry-After"); ra != pushRetryAfterSeconds {
		t.Fatalf("Retry-After = %q, want %q", ra, pushRetryAfterSeconds)
	}

	ds.Close()
	if ds2, err := svc.SubscribeDots("capped", 0); err != nil {
		t.Fatalf("subscribe after release: %v", err)
	} else {
		ds2.Close()
	}
}

// TestLiveStreamUnknownChannel404 and non-flushable writers fail fast.
func TestLiveStreamErrors(t *testing.T) {
	init, _ := trainedInitializer(t)
	svc := &Service{Store: NewStore(), Engine: liveTestEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	r, err := http.Get(srv.URL + "/api/live/stream?channel=nobody")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown channel = %d, want 404", r.StatusCode)
	}

	// A writer that cannot flush must be refused up front, not silently
	// buffered forever.
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/api/live/stream?channel=nobody", nil)
	svc.ServeLiveStream(struct{ http.ResponseWriter }{rec}, req, "nobody", 0)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("non-flushable writer = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "streaming unsupported") {
		t.Fatalf("non-flushable error body = %q", rec.Body.String())
	}
}

// TestPushDropAndResync pins the slow-client policy at the hub level: a
// subscriber whose 2-slot queue overflows is dropped to the lagged path
// and its next read is ONE coalesced delta from its cursor — the
// delivered sequence stays gap-free and converges to the full history,
// with the intermediate versions skipped rather than queued unboundedly.
func TestPushDropAndResync(t *testing.T) {
	init, target := trainedInitializer(t)
	eng := liveTestEngine(t, init)
	svc := &Service{Store: NewStore(), Engine: eng, PushQueueLen: 2}
	msgs := target.Chat.Log.Messages()
	if len(msgs) > 2048 {
		msgs = msgs[:2048]
	}
	sess, err := eng.Sessions().GetOrOpen("lag")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := svc.SubscribeDots("lag", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	ds.Pop() // clear the initial lagged state; the subscriber is now "live"

	// Many small batches → many published versions, none popped: the ring
	// must overflow and shed, never grow.
	for i := 0; i < len(msgs); i += 64 {
		if err := sess.Ingest(msgs[i:min(i+64, len(msgs))]...); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for sess.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("mailbox never drained")
		}
		time.Sleep(time.Millisecond)
	}

	stats := svc.PushStats()
	if stats.Drops == 0 {
		t.Fatalf("queue never overflowed (stats %+v); the drill is vacuous", stats)
	}

	// Drain: frames must chain exactly (each starts at the previous end).
	cursor, frames := 0, 0
	for {
		f, ok := ds.Pop()
		if !ok {
			break
		}
		if f.Start != cursor {
			t.Fatalf("gap after overflow: frame starts at %d, cursor is %d", f.Start, cursor)
		}
		cursor = f.End
		frames++
	}
	_, tip, _ := sess.DotsPage(0)
	if cursor != tip || tip == 0 {
		t.Fatalf("resync converged to %d, session tip is %d", cursor, tip)
	}
	if frames > 3 {
		t.Fatalf("expected coalesced resync (≤3 frames), got %d — queue not shedding", frames)
	}
	if after := svc.PushStats(); after.Resyncs == 0 {
		t.Fatalf("no resync recorded: %+v", after)
	}
}

// TestPushDeliverySteadyStateZeroAlloc gates the per-subscriber delivery
// cost: enqueue + Pop of an already-encoded frame must not allocate —
// fan-out to N subscribers is N pointer pushes, nothing per-subscriber on
// the heap. (The one encode per version is accounted separately and
// gated by encodes-per-version == 1 in the benchmark suite.)
func TestPushDeliverySteadyStateZeroAlloc(t *testing.T) {
	ds := &DotStream{
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
		buf:    make([]*PushFrame, defaultPushQueueLen),
	}
	frame := &PushFrame{Data: []byte("event: dots\ndata: {}\n\n"), Start: 0, End: 1, Version: 1}
	allocs := testing.AllocsPerRun(1000, func() {
		ds.cur = 0
		if !ds.enqueue(frame) {
			t.Fatal("enqueue refused")
		}
		if _, ok := ds.Pop(); !ok {
			t.Fatal("pop came up empty")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state delivery allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestPushSubscribersRaceIngest is the push-side mirror of the PR 5
// poller drill: 1k subscribers on ONE channel race batched ingest and
// checkpointing. Every subscriber must observe a gap-free,
// version-monotonic dot sequence — through broadcasts, overflows, and
// resyncs alike — and converge to the exact final history once the
// session closes (whose terminal event must reach every subscriber).
func TestPushSubscribersRaceIngest(t *testing.T) {
	const (
		subscribers = 1000
		batch       = 64
	)
	init, target := trainedInitializer(t)
	store := NewStore()
	eng, err := engine.New(init, mustExtractor(t), engine.Config{
		Warmup:             -1,
		Threshold:          0.01,
		Checkpoints:        store,
		CheckpointInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Close(ctx); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	svc := &Service{Store: store, Engine: eng, PushQueueLen: 4}
	msgs := target.Chat.Log.Messages()
	if len(msgs) > 4096 {
		msgs = msgs[:4096]
	}
	sess, err := eng.Sessions().GetOrOpen("push-race")
	if err != nil {
		t.Fatal(err)
	}

	type subResult struct {
		got []core.RedDot
		err string
	}
	results := make([]subResult, subscribers)
	var wg sync.WaitGroup
	for p := 0; p < subscribers; p++ {
		ds, err := svc.SubscribeDots("push-race", 0)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(p int, ds *DotStream) {
			defer wg.Done()
			defer ds.Close()
			res := &results[p]
			lastVer := uint64(0)
			for {
				select {
				case <-ds.Ready():
				case <-ds.Done():
				}
				for {
					f, ok := ds.Pop()
					if !ok {
						break
					}
					if f.Terminal {
						return
					}
					if f.Version < lastVer {
						res.err = "version went backwards"
						return
					}
					lastVer = f.Version
					ev := parsePushFrame(t, f.Data)
					var delta LiveDotsResponse
					if err := json.Unmarshal([]byte(ev.data), &delta); err != nil {
						res.err = "bad payload: " + err.Error()
						return
					}
					if len(delta.Dots) != delta.Cursor-len(res.got) {
						res.err = fmt.Sprintf("gap: delta to %d carries %d dots at cursor %d",
							delta.Cursor, len(delta.Dots), len(res.got))
						return
					}
					res.got = append(res.got, delta.Dots...)
				}
			}
		}(p, ds)
	}

	// Checkpoint loop racing ingest and fan-out.
	stopCkpt := make(chan struct{})
	ckptDone := make(chan struct{})
	go func() {
		defer close(ckptDone)
		ctx := context.Background()
		for {
			select {
			case <-stopCkpt:
				return
			default:
			}
			if err := sess.Checkpoint(ctx); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()

	// Batched, paced ingest keeps the race window open while queues churn.
	for i := 0; i < len(msgs); i += batch {
		if err := sess.Ingest(msgs[i:min(i+batch, len(msgs))]...); err != nil {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Microsecond)
	}
	close(stopCkpt)
	<-ckptDone

	final, err := eng.Sessions().CloseSession(context.Background(), "push-race")
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(final) == 0 {
		t.Fatal("stream emitted no dots; drill is vacuous")
	}
	for p := range results {
		res := &results[p]
		if res.err != "" {
			t.Fatalf("subscriber %d: %s", p, res.err)
		}
		if len(res.got) != len(final) {
			t.Fatalf("subscriber %d converged to %d dots, final history has %d", p, len(res.got), len(final))
		}
		for i := range res.got {
			if res.got[i] != final[i] {
				t.Fatalf("subscriber %d diverged at %d: %v vs %v", p, i, res.got[i], final[i])
			}
		}
	}
}
