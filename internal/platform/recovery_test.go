package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/engine"
	"lightor/internal/play"
	"lightor/internal/sim"
	"lightor/internal/stats"
)

// postJSON marshals v and POSTs it, returning the response.
func postJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// referenceDots runs a serial uninterrupted OnlineDetector over msgs.
func referenceDots(t *testing.T, init *core.Initializer, msgs []chat.Message) []core.RedDot {
	t.Helper()
	od, err := core.NewOnlineDetector(init, 0)
	if err != nil {
		t.Fatal(err)
	}
	od.SetWarmup(0)
	for _, m := range msgs {
		if _, err := od.Feed(m); err != nil {
			t.Fatal(err)
		}
	}
	od.Flush()
	return od.Emitted()
}

// refineViaAPI enqueues a refinement over the service API and polls it to
// completion, returning the refined boundaries.
func refineViaAPI(t *testing.T, baseURL, videoID string) []core.Interval {
	t.Helper()
	resp := postJSON(t, baseURL+"/api/refine?video="+videoID, nil)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("refine status = %d, want 202", resp.StatusCode)
	}
	var job RefineJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(baseURL + "/api/refine/status?job=" + job.Job)
		if err != nil {
			t.Fatal(err)
		}
		var st RefineJobResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.Status == engine.JobDone {
			return st.Boundaries
		}
		if time.Now().After(deadline) {
			t.Fatalf("refine job stuck in %q", st.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestKillAndRestartRecovery is the end-to-end durability guarantee of the
// persistence layer: a server killed mid-broadcast (no graceful shutdown —
// the engine and backend are simply abandoned) must recover from -data-dir
// with every acknowledged interaction intact and its live channel resumed
// from the last checkpoint, such that the dots emitted after recovery plus
// the pre-crash history exactly equal an uninterrupted run — and refined
// boundaries over the recovered interaction log match refinement over a
// store that never crashed.
func TestKillAndRestartRecovery(t *testing.T) {
	init, target := trainedInitializer(t)
	msgs := target.Chat.Log.Messages()
	want := referenceDots(t, init, msgs)
	if len(want) == 0 {
		t.Fatal("reference run emitted nothing; recovery test is vacuous")
	}
	half := len(msgs) / 2
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Interaction events simulated around the first reference dot.
	rng := stats.NewRand(11)
	h, _ := sim.NearestHighlight(target.Video, want[0].Time)
	var events []play.Event
	for i := 0; i < 8; i++ {
		events = append(events,
			sim.SimulateViewer(rng, fmt.Sprintf("u%d", i), target.Video, want[0].Time, h, sim.DefaultViewerBehavior())...)
	}

	// --- Incarnation 1: durable backend, real fsync. ---
	be1, err := OpenFileBackend(dir, FileConfig{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	store1 := NewStoreWith(be1)
	eng1, err := engine.New(init, mustExtractor(t), engine.Config{
		Warmup:             -1,
		Checkpoints:        store1,
		CheckpointInterval: -1, // deterministic: we checkpoint explicitly below
	})
	if err != nil {
		t.Fatal(err)
	}
	srv1 := httptest.NewServer((&Service{Store: store1, Engine: eng1}).Handler())

	if err := store1.PutVideo(VideoRecord{
		ID: target.Video.ID, Duration: target.Video.Duration, Chat: target.Chat.Log,
	}); err != nil {
		t.Fatal(err)
	}
	// Acknowledged interactions (204 = fsynced by the durable backend).
	resp := postJSON(t, srv1.URL+"/api/interactions?video="+target.Video.ID, events)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("interactions status = %d", resp.StatusCode)
	}

	// First half of the live broadcast, over the API in batches.
	const channel = "live1"
	for i := 0; i < half; i += 50 {
		end := i + 50
		if end > half {
			end = half
		}
		resp := postJSON(t, srv1.URL+"/api/live/chat?channel="+channel, msgs[i:end])
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("live chat status = %d", resp.StatusCode)
		}
	}
	sess, ok := eng1.Sessions().Get(channel)
	if !ok {
		t.Fatal("live session missing")
	}
	// The last checkpoint before the crash (deterministic stand-in for the
	// interval/on-emit checkpoints, which have already been written too).
	if err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}

	// KILL: no engine drain, no backend close, no snapshot — the process
	// is gone. Only what the WAL already fsynced survives.
	srv1.Close()

	// --- Incarnation 2: recover from the data dir. ---
	be2, err := OpenFileBackend(dir, FileConfig{SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	store2 := NewStoreWith(be2)
	t.Cleanup(func() { store2.Close() })
	eng2, err := engine.New(init, mustExtractor(t), engine.Config{
		Warmup:             -1,
		Checkpoints:        store2,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng2.Close(ctx) })
	resumed, err := eng2.ResumeSessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != 1 || resumed[0] != channel {
		t.Fatalf("resumed = %v, want [%s]", resumed, channel)
	}
	srv2 := httptest.NewServer((&Service{Store: store2, Engine: eng2}).Handler())
	defer srv2.Close()

	// No acknowledged interaction was lost.
	gotEvents, total := store2.EventsPage(target.Video.ID, 0, 0)
	if total != len(events) {
		t.Fatalf("recovered %d events, want %d", total, len(events))
	}
	for i := range events {
		if gotEvents[i] != events[i] {
			t.Fatalf("event %d = %+v, want %+v", i, gotEvents[i], events[i])
		}
	}

	// The resumed session continues from its watermark: the producer feeds
	// only what came after the checkpoint, never re-feeding history.
	sess2, ok := eng2.Sessions().Get(channel)
	if !ok {
		t.Fatal("resumed session not registered")
	}
	if wm := sess2.Watermark(); wm != msgs[half-1].Time {
		t.Fatalf("resumed watermark = %g, want %g", wm, msgs[half-1].Time)
	}
	for i := half; i < len(msgs); i += 50 {
		end := i + 50
		if end > len(msgs) {
			end = len(msgs)
		}
		resp := postJSON(t, srv2.URL+"/api/live/chat?channel="+channel, msgs[i:end])
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("post-recovery live chat status = %d", resp.StatusCode)
		}
	}
	// End the broadcast: the response carries the channel's full emission
	// history (pre-crash + post-recovery), which must equal the
	// uninterrupted reference exactly.
	req, err := http.NewRequest(http.MethodDelete, srv2.URL+"/api/live/session?channel="+channel, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var final LiveDotsResponse
	if err := json.NewDecoder(resp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(final.Dots) != len(want) {
		t.Fatalf("recovered run emitted %d dots, want %d:\n got %v\nwant %v",
			len(final.Dots), len(want), final.Dots, want)
	}
	for i := range want {
		if final.Dots[i] != want[i] {
			t.Fatalf("dot %d = %+v, want %+v", i, final.Dots[i], want[i])
		}
	}

	// Refined boundaries over the recovered interaction log must match
	// refinement over a store that never crashed (same dots, same events).
	if err := store2.SetRedDots(target.Video.ID, want); err != nil {
		t.Fatal(err)
	}
	pristine := NewStore()
	if err := pristine.PutVideo(VideoRecord{
		ID: target.Video.ID, Duration: target.Video.Duration, Chat: target.Chat.Log,
	}); err != nil {
		t.Fatal(err)
	}
	if err := pristine.LogEvents(target.Video.ID, events); err != nil {
		t.Fatal(err)
	}
	if err := pristine.SetRedDots(target.Video.ID, want); err != nil {
		t.Fatal(err)
	}
	engP, err := engine.New(init, mustExtractor(t), engine.Config{Warmup: -1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { engP.Close(ctx) })
	srvP := httptest.NewServer((&Service{Store: pristine, Engine: engP}).Handler())
	defer srvP.Close()

	recoveredBounds := refineViaAPI(t, srv2.URL, target.Video.ID)
	pristineBounds := refineViaAPI(t, srvP.URL, target.Video.ID)
	if len(recoveredBounds) != len(pristineBounds) {
		t.Fatalf("boundary counts differ: %d vs %d", len(recoveredBounds), len(pristineBounds))
	}
	for i := range pristineBounds {
		if recoveredBounds[i] != pristineBounds[i] {
			t.Errorf("boundary %d = %+v, want %+v", i, recoveredBounds[i], pristineBounds[i])
		}
	}
}

func mustExtractor(t *testing.T) *core.Extractor {
	t.Helper()
	ext, err := core.NewExtractor(core.DefaultExtractorConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return ext
}

// TestInteractionsPagination drives the paginated GET /api/interactions
// endpoint end to end.
func TestInteractionsPagination(t *testing.T) {
	init, target := trainedInitializer(t)
	store := NewStore()
	if err := store.PutVideo(VideoRecord{ID: "v1", Duration: 100}); err != nil {
		t.Fatal(err)
	}
	var events []play.Event
	for i := 0; i < 30; i++ {
		events = append(events, play.Event{User: "u", Seq: i, Type: play.EventPlay, Pos: float64(i)})
	}
	if err := store.LogEvents("v1", events); err != nil {
		t.Fatal(err)
	}
	svc := &Service{Store: store, Engine: testEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()
	_ = target

	get := func(query string) (InteractionsResponse, int) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/api/interactions" + query)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var page InteractionsResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&page); err != nil {
				t.Fatal(err)
			}
		}
		return page, resp.StatusCode
	}

	page, code := get("?video=v1&offset=0&limit=12")
	if code != http.StatusOK || page.Total != 30 || len(page.Events) != 12 || page.Events[0].Seq != 0 {
		t.Fatalf("page 1 = %+v (status %d)", page, code)
	}
	page, _ = get("?video=v1&offset=24&limit=12")
	if len(page.Events) != 6 || page.Events[0].Seq != 24 {
		t.Fatalf("last page = %+v", page)
	}
	page, _ = get("?video=v1&offset=99")
	if len(page.Events) != 0 || page.Total != 30 {
		t.Fatalf("past-the-end = %+v", page)
	}
	if _, code := get("?video=ghost"); code != http.StatusNotFound {
		t.Errorf("unknown video status = %d", code)
	}
	if _, code := get(""); code != http.StatusBadRequest {
		t.Errorf("missing video status = %d", code)
	}
	if _, code := get("?video=v1&offset=-1"); code != http.StatusBadRequest {
		t.Errorf("bad offset status = %d", code)
	}
	if _, code := get("?video=v1&limit=0"); code != http.StatusBadRequest {
		t.Errorf("bad limit status = %d", code)
	}
}
