package platform

import (
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"lightor/internal/wal"
)

// Standby checkpoint replicas: the receiver half of cross-node checkpoint
// replication (see replicator.go for the sender half).
//
// A ReplicaStore holds OTHER nodes' checkpoint envelopes — one file per
// channel under a dedicated replica area of the data-dir — so that when a
// node dies together with its disk, the survivors that were its ring
// successors can resume its channels from these local copies alone. The
// store is deliberately not the CheckpointStore: replicas must never be
// picked up by this node's own startup resume (ResumeSessions), only by
// the explicit failover path, so they live in their own directory with
// their own file format.

// replicaFormat is the wal envelope format name for replica files. The
// payload is 8 bytes of big-endian float64 watermark followed by the
// checkpoint state exactly as the owner's store accepted it.
const (
	replicaFormat  = "lightor-replica"
	replicaVersion = 1
	replicaExt     = ".rep"
)

// maxReplicaState mirrors maxResumeState: a replica envelope carries the
// same detector snapshot a resume does.
const maxReplicaState = maxResumeState

// ReplicaStore is the durable per-channel replica area. All operations are
// safe for concurrent use. Watermarks are monotone per channel: a delivery
// at or below the stored watermark is dropped (idempotent, duplicate- and
// reorder-proof), and a deleted channel leaves an in-memory tombstone so a
// late in-flight delivery cannot resurrect a closed broadcast within this
// process's lifetime.
type ReplicaStore struct {
	dir string

	mu sync.Mutex
	// wm is the stored watermark per channel; +Inf marks a tombstone
	// (deleted this process lifetime — nothing at or below +Inf applies,
	// which is everything).
	wm map[string]float64
}

// OpenReplicaStore opens (creating if needed) the replica area at dir and
// indexes the envelopes already present. Corrupt files are skipped — and
// reported joined into the returned error alongside a usable store —
// mirroring ResumeSessions: one torn replica must not take down the
// healthy ones next to it.
func OpenReplicaStore(dir string) (*ReplicaStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("platform: creating replica dir: %w", err)
	}
	rs := &ReplicaStore{dir: dir, wm: make(map[string]float64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("platform: reading replica dir: %w", err)
	}
	var errs []error
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, replicaExt) {
			continue
		}
		channel, derr := decodeReplicaName(name)
		if derr != nil {
			errs = append(errs, fmt.Errorf("platform: replica file %q: %w", name, derr))
			continue
		}
		wm, _, rerr := readReplicaFile(filepath.Join(dir, name))
		if rerr != nil {
			errs = append(errs, fmt.Errorf("platform: replica %q: %w", channel, rerr))
			continue
		}
		rs.wm[channel] = wm
	}
	return rs, errors.Join(errs...)
}

// Dir returns the replica area's directory.
func (rs *ReplicaStore) Dir() string { return rs.dir }

// path maps a channel id to its replica file. Hex-encoding the id keeps
// arbitrary channel names (slashes, dots, unicode) out of the filesystem
// namespace.
func (rs *ReplicaStore) path(channel string) string {
	return filepath.Join(rs.dir, hex.EncodeToString([]byte(channel))+replicaExt)
}

func decodeReplicaName(name string) (string, error) {
	raw, err := hex.DecodeString(strings.TrimSuffix(name, replicaExt))
	if err != nil {
		return "", fmt.Errorf("undecodable name: %w", err)
	}
	return string(raw), nil
}

// Put stores a replica delivery if it advances the channel's watermark,
// reporting whether it was applied. Stale or duplicate deliveries
// (watermark at or below the stored one, including the +Inf tombstone a
// Delete leaves) return (false, nil) — dropped, not an error. The write is
// atomic: temp file, fsync, rename, so a crash mid-write leaves the
// previous envelope intact.
func (rs *ReplicaStore) Put(channel string, watermark float64, state []byte) (bool, error) {
	if len(state) > maxReplicaState {
		return false, fmt.Errorf("platform: replica state for %q exceeds %d bytes", channel, maxReplicaState)
	}
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if stored, ok := rs.wm[channel]; ok && watermark <= stored {
		return false, nil
	}
	payload := make([]byte, 8+len(state))
	binary.BigEndian.PutUint64(payload, math.Float64bits(watermark))
	copy(payload[8:], state)

	path := rs.path(channel)
	tmp := path + ".tmp"
	if err := writeReplicaFile(tmp, payload); err != nil {
		os.Remove(tmp)
		return false, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return false, fmt.Errorf("platform: publishing replica for %q: %w", channel, err)
	}
	if d, err := os.Open(rs.dir); err == nil {
		d.Sync()
		d.Close()
	}
	rs.wm[channel] = watermark
	return true, nil
}

func writeReplicaFile(path string, payload []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := wal.WriteEnvelope(f, replicaFormat, replicaVersion, payload); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readReplicaFile(path string) (wm float64, state []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	_, payload, err := wal.ReadEnvelope(f, replicaFormat, replicaVersion)
	if err != nil {
		return 0, nil, err
	}
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("%w: replica payload shorter than its watermark", wal.ErrCorrupt)
	}
	return math.Float64frombits(binary.BigEndian.Uint64(payload)), payload[8:], nil
}

// Get reads a channel's replica envelope back: the checkpoint state and
// the watermark it was stored under. ok is false for unknown or
// tombstoned channels, and for a file that fails validation on read.
func (rs *ReplicaStore) Get(channel string) (state []byte, watermark float64, ok bool) {
	rs.mu.Lock()
	wm, known := rs.wm[channel]
	rs.mu.Unlock()
	if !known || math.IsInf(wm, 1) {
		return nil, 0, false
	}
	fwm, state, err := readReplicaFile(rs.path(channel))
	if err != nil {
		return nil, 0, false
	}
	return state, fwm, true
}

// Delete removes a channel's replica and tombstones it: the broadcast
// ended (or the replica moved elsewhere), and a late in-flight delivery
// must not resurrect it. The tombstone is in-memory only — after a
// restart the owner no longer lists the channel, so anti-entropy never
// re-ships it.
func (rs *ReplicaStore) Delete(channel string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	err := os.Remove(rs.path(channel))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	rs.wm[channel] = math.Inf(1)
	return nil
}

// Watermarks returns the stored watermark per live (non-tombstoned)
// channel — the receiver's half of the anti-entropy comparison.
func (rs *ReplicaStore) Watermarks() map[string]float64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make(map[string]float64, len(rs.wm))
	for ch, wm := range rs.wm {
		if math.IsInf(wm, 1) {
			continue
		}
		out[ch] = wm
	}
	return out
}

// Channels returns the live (non-tombstoned) replicated channels, sorted.
func (rs *ReplicaStore) Channels() []string {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]string, 0, len(rs.wm))
	for ch, wm := range rs.wm {
		if math.IsInf(wm, 1) {
			continue
		}
		out = append(out, ch)
	}
	sort.Strings(out)
	return out
}
