package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lightor/internal/cluster"
	"lightor/internal/core"
	"lightor/internal/fault"
)

// replicatedNode pairs a cluster fixture node with its replicator.
type replicatedNode struct {
	*clusterNode
	rep *Replicator
}

// startReplicatedCluster is startCluster with checkpointing file backends
// on every node plus a wired, started Replicator per node (factor
// `replicas`, fast anti-entropy cadence). The replica areas live in their
// own temp dirs, separate from the data dirs, as in production.
func startReplicatedCluster(t *testing.T, init *core.Initializer, n, replicas int) []*replicatedNode {
	t.Helper()
	dirs := make([]string, n)
	for i := range dirs {
		dirs[i] = t.TempDir()
	}
	nodes := startCluster(t, init, n, dirs)
	out := make([]*replicatedNode, n)
	for i, cn := range nodes {
		rs, err := OpenReplicaStore(filepath.Join(t.TempDir(), "replicas"))
		if err != nil {
			t.Fatal(err)
		}
		rep := NewReplicator(cn.svc, rs, replicas, 50*time.Millisecond)
		rep.Start()
		out[i] = &replicatedNode{clusterNode: cn, rep: rep}
	}
	t.Cleanup(func() {
		for _, rn := range out {
			rn.rep.Stop()
		}
	})
	return out
}

// successorOf returns the node the owner's replicator ships the channel's
// checkpoints to: the first ring successor skipping the owner itself.
func successorOf(t *testing.T, nodes []*replicatedNode, owner *replicatedNode, channel string) *replicatedNode {
	t.Helper()
	id := owner.node.Ring().OwnerSkipping(channel, func(peer string) bool { return peer == owner.id })
	for _, rn := range nodes {
		if rn.id == id {
			return rn
		}
	}
	t.Fatalf("no node for successor %q", id)
	return nil
}

func TestReplicaStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rs, err := OpenReplicaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Channel names with filesystem-hostile characters must round-trip.
	const ch = "room/π:42"
	if applied, err := rs.Put(ch, 5, []byte("v5")); err != nil || !applied {
		t.Fatalf("first Put = (%v, %v), want applied", applied, err)
	}
	// Duplicates and stale deliveries are dropped, not errors.
	if applied, err := rs.Put(ch, 5, []byte("dup")); err != nil || applied {
		t.Fatalf("duplicate Put = (%v, %v), want dropped", applied, err)
	}
	if applied, err := rs.Put(ch, 4, []byte("stale")); err != nil || applied {
		t.Fatalf("stale Put = (%v, %v), want dropped", applied, err)
	}
	if applied, err := rs.Put(ch, 6, []byte("v6")); err != nil || !applied {
		t.Fatalf("advancing Put = (%v, %v), want applied", applied, err)
	}
	state, wm, ok := rs.Get(ch)
	if !ok || wm != 6 || string(state) != "v6" {
		t.Fatalf("Get = (%q, %v, %v), want (v6, 6, true)", state, wm, ok)
	}
	if wms := rs.Watermarks(); len(wms) != 1 || wms[ch] != 6 {
		t.Fatalf("Watermarks = %v", wms)
	}

	// Reopen re-indexes from disk.
	rs2, err := OpenReplicaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if state, wm, ok := rs2.Get(ch); !ok || wm != 6 || string(state) != "v6" {
		t.Fatalf("reopened Get = (%q, %v, %v)", state, wm, ok)
	}

	// Delete tombstones: the file is gone AND a late redelivery cannot
	// resurrect the channel within this process lifetime.
	if err := rs2.Delete(ch); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := rs2.Get(ch); ok {
		t.Fatal("Get succeeded after Delete")
	}
	if applied, err := rs2.Put(ch, 1e9, []byte("late")); err != nil || applied {
		t.Fatalf("post-delete Put = (%v, %v), want dropped by tombstone", applied, err)
	}
	if chs := rs2.Channels(); len(chs) != 0 {
		t.Fatalf("Channels after delete = %v", chs)
	}
	// Double delete is fine.
	if err := rs2.Delete(ch); err != nil {
		t.Fatal(err)
	}
}

func TestReplicaStoreCorruptSkip(t *testing.T) {
	dir := t.TempDir()
	rs, err := OpenReplicaStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.Put("good", 3, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// A torn envelope and an undecodable name next to the healthy replica.
	if err := os.WriteFile(rs.path("torn"), []byte("not an envelope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "zz-not-hex.rep"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	rs2, err := OpenReplicaStore(dir)
	if err == nil {
		t.Fatal("reopen over corrupt files reported no error")
	}
	if rs2 == nil {
		t.Fatal("corrupt neighbors took down the whole store")
	}
	if state, wm, ok := rs2.Get("good"); !ok || wm != 3 || string(state) != "keep" {
		t.Fatalf("healthy replica lost next to corrupt ones: (%q, %v, %v)", state, wm, ok)
	}
	if chs := rs2.Channels(); len(chs) != 1 || chs[0] != "good" {
		t.Fatalf("Channels = %v, want [good]", chs)
	}
}

// TestPingEndpoint: the static liveness probe answers without touching
// store, engine, or cluster state, and only on GET.
func TestPingEndpoint(t *testing.T) {
	init, _ := trainedInitializer(t)
	nodes := startCluster(t, init, 1, nil)
	resp, err := http.Get(nodes[0].srv.URL + "/api/ping")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "pong\n" {
		t.Fatalf("GET /api/ping = %d %q, want 200 pong", resp.StatusCode, body)
	}
	post, err := http.Post(nodes[0].srv.URL+"/api/ping", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/ping = %d, want 405", post.StatusCode)
	}
}

// TestClusterReplicaEndpointGating: the replica endpoints sit behind the
// cluster secret, and answer 503 when replication is not enabled rather
// than silently dropping deliveries.
func TestClusterReplicaEndpointGating(t *testing.T) {
	init, _ := trainedInitializer(t)
	nodes := startCluster(t, init, 2, nil) // no replicators wired

	url := nodes[0].srv.URL + "/api/cluster/replica?channel=ch&watermark=1"
	// No secret: rejected before any replication logic runs.
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader([]byte("s")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unauthenticated POST = %d, want 403", resp.StatusCode)
	}
	// Secret but replication off: 503 so the sender's logs say why.
	resp = clusterControlPost(t, url)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST without replication = %d, want 503", resp.StatusCode)
	}
}

// TestClusterReplicationShipsCheckpoints is the tentpole's transport leg
// end to end: checkpoints taken on the owner arrive byte-identical in the
// ring successor's replica area, the extended /api/cluster/owned reports
// both sides' watermarks, and closing the broadcast deletes the replica.
func TestClusterReplicationShipsCheckpoints(t *testing.T) {
	init, target := trainedInitializer(t)
	msgs := target.Chat.Log.Messages()
	const channel = "rep-ship"

	nodes := startReplicatedCluster(t, init, 3, 1)
	owner := ownerNode(t, nodes, channel)
	succ := successorOf(t, nodes, owner, channel)

	ingest(t, owner.srv.URL, channel, msgs)
	sess, ok := owner.eng.Sessions().Get(channel)
	if !ok {
		t.Fatal("session missing on owner")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	want := owner.store.Checkpoints()[channel]
	if len(want) == 0 {
		t.Fatal("owner stored no checkpoint; test is vacuous")
	}

	// The successor's replica converges to the owner's stored bytes.
	var wm float64
	waitFor(t, 10*time.Second, "replica to match owner checkpoint", func() bool {
		state, w, ok := succ.rep.Store().Get(channel)
		wm = w
		return ok && bytes.Equal(state, want)
	})
	// Nothing leaked to the third node (factor 1 → exactly one standby).
	for _, rn := range nodes {
		if rn != owner && rn != succ {
			if _, _, ok := rn.rep.Store().Get(channel); ok {
				t.Fatalf("replica for %q leaked to non-successor %s", channel, rn.id)
			}
		}
	}

	// Extended owned report: the owner lists the live session, the
	// successor lists the replica watermark anti-entropy compares against.
	ownedOwner := fetchOwnedReport(t, owner.srv.URL)
	if _, ok := ownedOwner.Owned[channel]; !ok {
		t.Fatalf("owner owned report lacks %q: %+v", channel, ownedOwner)
	}
	ownedSucc := fetchOwnedReport(t, succ.srv.URL)
	if got := ownedSucc.Replicas[channel]; got != wm {
		t.Fatalf("successor replica report = %v, want %v", got, wm)
	}

	// Closing the broadcast deletes the replica everywhere.
	req, err := http.NewRequest(http.MethodDelete, owner.srv.URL+"/api/live/session?channel="+channel, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close = %d, want 200", resp.StatusCode)
	}
	waitFor(t, 10*time.Second, "replica deletion to propagate", func() bool {
		_, _, ok := succ.rep.Store().Get(channel)
		return !ok
	})
}

// TestClusterReplicationAntiEntropy: with the send path failpointed dead,
// no checkpoint reaches the successor; the reconciler repairs the gap —
// re-shipping from the latest local checkpoint — as soon as the fault
// lifts, without new ingest.
func TestClusterReplicationAntiEntropy(t *testing.T) {
	init, target := trainedInitializer(t)
	msgs := target.Chat.Log.Messages()
	const channel = "rep-heal"

	nodes := startReplicatedCluster(t, init, 3, 1)
	owner := ownerNode(t, nodes, channel)
	succ := successorOf(t, nodes, owner, channel)

	t.Cleanup(fault.DisarmAll)
	if err := fault.Arm(cluster.FailpointReplicaSend, "err:replication link down"); err != nil {
		t.Fatal(err)
	}

	ingest(t, owner.srv.URL, channel, msgs)
	sess, ok := owner.eng.Sessions().Get(channel)
	if !ok {
		t.Fatal("session missing on owner")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	want := owner.store.Checkpoints()[channel]
	if _, _, ok := succ.rep.Store().Get(channel); ok {
		t.Fatal("replica arrived through a dead send path")
	}

	fault.DisarmAll()
	waitFor(t, 10*time.Second, "anti-entropy to repair the missing replica", func() bool {
		state, _, ok := succ.rep.Store().Get(channel)
		return ok && bytes.Equal(state, want)
	})
}

// TestReplicaFailoverOnPeerDown: when the owner is declared down, the ring
// successor resumes the channel from its LOCAL replica alone — no manual
// resume, no read of the owner's disk — pins ownership, reports the
// source in healthz, and keeps serving ingest. The other survivor,
// holding no replica, stays out of the way.
func TestReplicaFailoverOnPeerDown(t *testing.T) {
	init, target := trainedInitializer(t)
	msgs := target.Chat.Log.Messages()
	const channel = "rep-failover"

	nodes := startReplicatedCluster(t, init, 3, 1)
	owner := ownerNode(t, nodes, channel)
	succ := successorOf(t, nodes, owner, channel)

	half := len(msgs) / 2
	ingest(t, owner.srv.URL, channel, msgs[:half])
	sess, ok := owner.eng.Sessions().Get(channel)
	if !ok {
		t.Fatal("session missing on owner")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := sess.Checkpoint(ctx); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "replica to reach the successor", func() bool {
		_, _, ok := succ.rep.Store().Get(channel)
		return ok
	})

	// Heartbeats would declare the owner dead on every survivor; do the
	// same by hand. The up→down transition fires each survivor's failover.
	var third *replicatedNode
	for _, rn := range nodes {
		if rn != owner {
			if err := rn.node.SetDown(owner.id, true); err != nil {
				t.Fatal(err)
			}
			if rn != succ {
				third = rn
			}
		}
	}

	waitFor(t, 10*time.Second, "successor to resume from its replica", func() bool {
		_, ok := succ.eng.Sessions().Get(channel)
		return ok
	})
	if _, ok := third.eng.Sessions().Get(channel); ok {
		t.Fatalf("non-successor %s also resumed the channel", third.id)
	}

	// The resume source is visible to operators.
	waitFor(t, 10*time.Second, "healthz to report the replica resume", func() bool {
		resp, err := http.Get(succ.srv.URL + "/api/healthz")
		if err != nil {
			return false
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			return false
		}
		return h.ResumedFrom[channel] == "replica"
	})

	// Ownership pin reached the other survivor, so ingest sent anywhere
	// lands on the new owner.
	waitFor(t, 10*time.Second, "ownership pin to reach the other survivor", func() bool {
		pinned, moving := third.node.Resolve(channel)
		return !moving && pinned == succ.id
	})
	ingest(t, third.srv.URL, channel, msgs[half:])
	if _, ok := third.eng.Sessions().Get(channel); ok {
		t.Fatal("post-failover ingest opened a session on the forwarding node")
	}
}

// ownerNode finds the replicated node that owns the channel.
func ownerNode(t *testing.T, nodes []*replicatedNode, channel string) *replicatedNode {
	t.Helper()
	id := nodes[0].node.Owner(channel)
	for _, rn := range nodes {
		if rn.id == id {
			return rn
		}
	}
	t.Fatalf("no node for owner %q", id)
	return nil
}

// ingest POSTs msgs to url's live chat endpoint in batches, failing the
// test on any non-202 or short ack.
func ingest(t *testing.T, url, channel string, msgs any) {
	t.Helper()
	// msgs is the concrete slice from the sim fixture; batch via reflection
	// would be overkill — one POST is fine at fixture sizes.
	resp := postJSON(t, url+"/api/live/chat?channel="+channel, msgs)
	var ack LiveIngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest = %d (%+v), want 202", resp.StatusCode, ack)
	}
}

// fetchOwnedReport GETs the parameterless /api/cluster/owned report.
func fetchOwnedReport(t *testing.T, base string) OwnedResponse {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/api/cluster/owned", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(ClusterKeyHeader, testClusterSecret)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("owned report = %d: %s", resp.StatusCode, body)
	}
	var out OwnedResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
