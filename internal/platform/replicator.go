package platform

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"lightor/internal/cluster"
	"lightor/internal/engine"
	"lightor/internal/fault"
)

// Replicator is the sender half of checkpoint replication plus the
// replica-backed failover path. It hangs off the engine's
// CheckpointListener hook: every checkpoint the local store accepts is
// shipped — asynchronously, OFF the ack path — to the channel's ring
// successors, where a ReplicaStore files it. Durability semantics are
// unchanged (a producer's ack still means local-WAL-durable); the replica
// is a second source for failover, lagging the owner by at most one
// checkpoint interval plus transport time.
//
// Three loops cooperate:
//
//	shipper     — drains the coalesced pending map; per channel, the
//	              newest checkpoint wins (a burst of emissions ships the
//	              last state once, not every intermediate)
//	reconciler  — anti-entropy on a heartbeat-like cadence: compares each
//	              successor's replica watermarks (via the extended
//	              /api/cluster/owned) against the latest local
//	              checkpoints and re-ships missing or behind channels;
//	              because targets are recomputed every round, ring
//	              membership changes re-target replicas automatically
//	failover    — on an up→down peer transition (cluster.OnPeerDown),
//	              resumes the dead node's channels from the LOCAL replica
//	              area on whichever survivor the ring now places them,
//	              with no read of the victim's disk
type Replicator struct {
	svc   *Service
	store *ReplicaStore

	// replicas is the replication factor: how many distinct ring
	// successors receive each checkpoint (flag -replicas, default 1).
	replicas int
	// reconcileEvery is the anti-entropy cadence (default 1s, the
	// heartbeat default).
	reconcileEvery time.Duration

	mu      sync.Mutex
	pending map[string]replicaUpdate // coalesced outbound queue
	latest  map[string]replicaUpdate // last accepted checkpoint per channel
	resumed map[string]string        // channel → state source ("replica")

	wake chan struct{}
	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

type replicaUpdate struct {
	state []byte
	wm    float64
	del   bool
}

// NewReplicator wires a replicator onto svc: it registers itself as the
// engine's checkpoint listener and as the cluster's peer-down observer,
// and sets svc.Replication so the /api/cluster/replica handlers and
// healthz find the store. Call Start to launch the loops and Stop on
// shutdown. replicas < 1 is clamped to 1.
func NewReplicator(svc *Service, store *ReplicaStore, replicas int, reconcileEvery time.Duration) *Replicator {
	if replicas < 1 {
		replicas = 1
	}
	if reconcileEvery <= 0 {
		reconcileEvery = time.Second
	}
	rep := &Replicator{
		svc:            svc,
		store:          store,
		replicas:       replicas,
		reconcileEvery: reconcileEvery,
		pending:        make(map[string]replicaUpdate),
		latest:         make(map[string]replicaUpdate),
		resumed:        make(map[string]string),
		wake:           make(chan struct{}, 1),
		stop:           make(chan struct{}),
	}
	svc.Replication = rep
	svc.Engine.Sessions().SetCheckpointListener(rep)
	svc.Cluster.OnPeerDown(rep.PeerDown)
	return rep
}

// Store returns the local replica area (the receiver side).
func (rep *Replicator) Store() *ReplicaStore { return rep.store }

// CheckpointSaved implements engine.CheckpointListener: the state is
// copied (the engine reuses its encode buffer) and queued for the shipper;
// per channel only the newest checkpoint survives coalescing. Runs on the
// session's mailbox worker, so it must stay cheap — one copy, one map
// store, one non-blocking signal.
func (rep *Replicator) CheckpointSaved(channel string, state []byte, watermark float64) {
	if math.IsInf(watermark, 0) || math.IsNaN(watermark) {
		// The session close path flushes remaining windows by driving the
		// detector clock to +Inf and checkpoints that terminal state once
		// more before dropping it. It is not a resumable position — the
		// CheckpointDropped that follows deletes the replica anyway — and
		// the replica endpoint rejects non-finite watermarks, so shipping
		// it would only race the delete and spam both nodes' logs.
		return
	}
	up := replicaUpdate{state: append([]byte(nil), state...), wm: watermark}
	rep.mu.Lock()
	rep.pending[channel] = up
	rep.latest[channel] = up
	rep.mu.Unlock()
	rep.signal()
}

// CheckpointDropped implements engine.CheckpointListener: the broadcast
// ended (or handed off), so successors delete their replicas too.
func (rep *Replicator) CheckpointDropped(channel string) {
	rep.mu.Lock()
	rep.pending[channel] = replicaUpdate{del: true}
	delete(rep.latest, channel)
	rep.mu.Unlock()
	rep.signal()
}

func (rep *Replicator) signal() {
	select {
	case rep.wake <- struct{}{}:
	default:
	}
}

// Start launches the shipper and reconciler loops. Idempotent.
func (rep *Replicator) Start() {
	rep.once.Do(func() {
		rep.wg.Add(2)
		go rep.shipLoop()
		go rep.reconcileLoop()
	})
}

// Stop halts the loops and waits for in-flight ships to finish. The
// listener hooks stay registered but only accumulate state; nothing
// ships after Stop returns.
func (rep *Replicator) Stop() {
	select {
	case <-rep.stop:
		return
	default:
	}
	close(rep.stop)
	rep.wg.Wait()
}

// ResumedFrom returns the channels this node resumed via failover and the
// source of their state — the healthz "resumed_from" payload.
func (rep *Replicator) ResumedFrom() map[string]string {
	rep.mu.Lock()
	defer rep.mu.Unlock()
	if len(rep.resumed) == 0 {
		return nil
	}
	out := make(map[string]string, len(rep.resumed))
	for ch, src := range rep.resumed {
		out[ch] = src
	}
	return out
}

// targets computes the channel's current replica set: up to rep.replicas
// DISTINCT ring successors, skipping self, already-chosen nodes, and
// down-marked members. Recomputed on every ship, so membership changes
// (a node marked down, a new ring) re-target automatically; stale copies
// on former targets are harmless (monotone Put, deleted with the
// broadcast or expired with the process).
func (rep *Replicator) targets(channel string) []string {
	c := rep.svc.Cluster
	skip := map[string]bool{c.Self(): true}
	var out []string
	for i := 0; i < rep.replicas; i++ {
		t := c.Ring().OwnerSkipping(channel, func(id string) bool {
			return skip[id] || c.Down(id)
		})
		if t == "" {
			break
		}
		skip[t] = true
		out = append(out, t)
	}
	return out
}

func (rep *Replicator) shipLoop() {
	defer rep.wg.Done()
	for {
		select {
		case <-rep.stop:
			return
		case <-rep.wake:
		}
		for {
			rep.mu.Lock()
			batch := rep.pending
			rep.pending = make(map[string]replicaUpdate)
			rep.mu.Unlock()
			if len(batch) == 0 {
				break
			}
			// Deterministic order keeps interleaved logs readable; the
			// per-channel coalescing above keeps the batch small.
			channels := make([]string, 0, len(batch))
			for ch := range batch {
				channels = append(channels, ch)
			}
			sort.Strings(channels)
			for _, ch := range channels {
				rep.ship(ch, batch[ch])
			}
		}
	}
}

// ship delivers one coalesced update to every current target. Failures
// are logged and dropped — the reconciler re-ships anything a successor
// is missing, so a lost delivery costs staleness bounded by the
// reconcile cadence, never correctness.
func (rep *Replicator) ship(channel string, up replicaUpdate) {
	c := rep.svc.Cluster
	for _, target := range rep.targets(channel) {
		addr, ok := c.Addr(target)
		if !ok {
			continue
		}
		if fault.Enabled() {
			if err := fault.Hit(cluster.FailpointReplicaSend); err != nil {
				log.Printf("platform: replica send %q -> %s: %v", channel, target, err)
				continue
			}
		}
		var err error
		if up.del {
			_, err = rep.svc.clusterDo(context.Background(), target, http.MethodDelete,
				"http://"+addr+"/api/cluster/replica?channel="+url.QueryEscape(channel), nil)
		} else {
			_, err = rep.svc.clusterDo(context.Background(), target, http.MethodPost,
				"http://"+addr+"/api/cluster/replica?channel="+url.QueryEscape(channel)+
					"&watermark="+strconv.FormatFloat(up.wm, 'g', -1, 64), up.state)
		}
		if err != nil {
			log.Printf("platform: replica ship %q -> %s: %v", channel, target, err)
		}
	}
}

func (rep *Replicator) reconcileLoop() {
	defer rep.wg.Done()
	t := time.NewTicker(rep.reconcileEvery)
	defer t.Stop()
	for {
		select {
		case <-rep.stop:
			return
		case <-t.C:
			rep.reconcile()
		}
	}
}

// reconcile is one anti-entropy round: fetch each current target's
// replica watermarks (one extended /api/cluster/owned call per peer) and
// re-queue every channel the target is missing or behind on. Down peers
// and fetch failures skip the round — the next tick retries.
func (rep *Replicator) reconcile() {
	rep.mu.Lock()
	latest := make(map[string]replicaUpdate, len(rep.latest))
	for ch, up := range rep.latest {
		latest[ch] = up
	}
	rep.mu.Unlock()
	if len(latest) == 0 {
		return
	}

	// Group channels by target so each peer is asked once per round.
	byTarget := make(map[string][]string)
	for ch := range latest {
		for _, t := range rep.targets(ch) {
			byTarget[t] = append(byTarget[t], ch)
		}
	}
	for target, channels := range byTarget {
		owned, err := rep.fetchOwned(target)
		if err != nil {
			continue
		}
		for _, ch := range channels {
			have, ok := owned.Replicas[ch]
			if ok && have >= latest[ch].wm {
				continue
			}
			rep.mu.Lock()
			// Re-queue only if nothing newer is already pending.
			if cur, pending := rep.pending[ch]; !pending || (!cur.del && cur.wm < latest[ch].wm) {
				rep.pending[ch] = latest[ch]
			}
			rep.mu.Unlock()
			rep.signal()
		}
	}
}

// fetchOwned retrieves a peer's extended owned/replica watermark report —
// single attempt under the cluster call timeout (the reconciler's cadence
// is the retry loop), breaker-accounted like every peer call.
func (rep *Replicator) fetchOwned(peer string) (OwnedResponse, error) {
	c := rep.svc.Cluster
	addr, ok := c.Addr(peer)
	if !ok {
		return OwnedResponse{}, fmt.Errorf("unknown peer %q", peer)
	}
	br := c.Breaker(peer)
	if !br.Allow() {
		return OwnedResponse{}, fmt.Errorf("peer %s circuit breaker %s", peer, br.State())
	}
	if fault.Enabled() {
		if err := fault.Hit(cluster.FailpointControl); err != nil {
			br.Failure()
			return OwnedResponse{}, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.Timeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/api/cluster/owned", nil)
	if err != nil {
		return OwnedResponse{}, err
	}
	if c.Secret != "" {
		req.Header.Set(ClusterKeyHeader, c.Secret)
	}
	resp, err := c.Client().Do(req)
	if err != nil {
		br.Failure()
		return OwnedResponse{}, err
	}
	br.Success()
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return OwnedResponse{}, fmt.Errorf("owned probe of %s: %s: %s", peer, resp.Status, msg)
	}
	var out OwnedResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return OwnedResponse{}, err
	}
	return out, nil
}

// PeerDown is the failover entry point, registered as the cluster's
// OnPeerDown observer: when dead is declared down (heartbeat misses or
// operator announcement), every replicated channel the ring now places on
// THIS node resumes from the local replica area — the victim's disk is
// never read. Channels the ring places on other survivors are left to
// them (each node runs the same deterministic placement), and a channel
// that is already live anywhere stays where it is.
func (rep *Replicator) PeerDown(dead string) {
	s := rep.svc
	c := s.Cluster
	for _, channel := range rep.store.Channels() {
		owner, moving := c.Resolve(channel)
		if moving || owner != c.Self() {
			continue
		}
		if _, live := s.Engine.Sessions().Get(channel); live {
			continue
		}
		// Split-brain guard: a channel may be live on a survivor this
		// node's routing hasn't caught up with (a handoff this node missed,
		// an operator resume). Probe the other up peers before adopting —
		// best-effort: a probe failure proceeds (the peer may be down too),
		// and the RestoreSession ErrSessionExists race below remains the
		// backstop on this node itself.
		if rep.liveElsewhere(channel, dead) {
			continue
		}
		state, wm, ok := rep.store.Get(channel)
		if !ok {
			continue
		}
		if _, err := s.Engine.Sessions().RestoreSession(channel, state); err != nil {
			if !errors.Is(err, engine.ErrSessionExists) {
				log.Printf("platform: replica failover %q: %v", channel, err)
			}
			continue
		}
		s.dotsCache.drop(channel)
		_ = c.SetOverride(channel, c.Self())
		rep.mu.Lock()
		rep.resumed[channel] = "replica"
		rep.mu.Unlock()
		log.Printf("platform: resumed channel %q from replica (watermark %.3f) after %s went down",
			channel, wm, dead)
		// Best-effort pin broadcast, as in the handoff commit: an
		// unnotified peer still converges through the ring (dead is down
		// everywhere heartbeats run), just with an extra hop.
		for _, p := range c.Peers() {
			if p.ID == c.Self() || p.ID == dead {
				continue
			}
			_, _ = s.clusterDo(context.Background(), p.ID, http.MethodPost,
				"http://"+p.Addr+"/api/cluster/route?channel="+url.QueryEscape(channel)+
					"&owner="+url.QueryEscape(c.Self()), nil)
		}
	}
}

// liveElsewhere probes the up peers (excluding dead) for a live session
// on channel. Only a definite "yes" (2xx) counts.
func (rep *Replicator) liveElsewhere(channel, dead string) bool {
	c := rep.svc.Cluster
	for _, p := range c.Peers() {
		if p.ID == c.Self() || p.ID == dead || c.Down(p.ID) {
			continue
		}
		if _, err := rep.svc.clusterDo(context.Background(), p.ID, http.MethodGet,
			"http://"+p.Addr+"/api/cluster/owned?channel="+url.QueryEscape(channel), nil); err == nil {
			return true
		}
	}
	return false
}
