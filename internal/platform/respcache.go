package platform

import (
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Read-path response cache: pre-encoded JSON bodies keyed by
// (stream, sub-key, version).
//
// The serving shape of the system is many-readers-per-writer — one
// streamer's chat produces dots that millions of viewers poll — so the
// read fast lane caches the *encoded response bytes*, not the data:
// a cache hit is a map lookup plus one Write of an immutable []byte,
// with zero allocations and zero JSON work. Versions make invalidation
// free: dot emission bumps the engine's snapshot version and store
// mutations (SetRedDots, refine completion) bump the store revision, so
// a stale entry simply stops being addressed — there is no invalidation
// broadcast to miss.
//
// Each entry also carries its ETag, giving conditional GETs the same
// fast lane: a steady-state poller that echoes If-None-Match gets a 304
// with no body bytes transferred at all.

// cacheEntry is one pre-encoded response. The payload fields are
// immutable after publication and shared by every reader that hits the
// entry; hit is eviction metadata (see evictSecondChance).
type cacheEntry struct {
	body []byte // exact bytes the uncached encoder would produce
	etag string // strong validator, quoted form
	// etagHdr and clHdr are the pre-built header values, so a cache hit
	// assigns ready-made slices into the response header map instead of
	// allocating []string{...} per request.
	etagHdr []string
	clHdr   []string
	hit     atomic.Bool // touched since the last eviction sweep
}

// newCacheEntry takes ownership of body.
func newCacheEntry(body []byte, etag string) *cacheEntry {
	return &cacheEntry{
		body:    body,
		etag:    etag,
		etagHdr: []string{etag},
		clHdr:   []string{strconv.Itoa(len(body))},
	}
}

// jsonCTHeader is the shared pre-built Content-Type value.
var jsonCTHeader = []string{"application/json"}

// etagMatch reports whether the If-None-Match header value matches etag.
// Strong comparison of our own quoted validators; a header listing
// several candidates matches if any of them is ours, and the RFC 7232
// wildcard form matches any current representation (we only consult it
// when one exists).
func etagMatch(inm, etag string) bool {
	return inm == "*" || (inm != "" && strings.Contains(inm, etag))
}

// Bounds. Streams (channels/videos) beyond the cap evict by
// second-chance (evictSecondChance) — the cache is a pure performance
// layer, so eviction is always safe, but the victim choice matters: a
// flash-crowd channel's hot entry must survive churn from thousands of
// cold ones. Sub-keys per stream (cursors for dots, k values for
// highlights) are naturally small; the cap is a guard against clients
// minting adversarial cursor values faster than versions rotate them
// out, and uses the same policy so real pollers' cursors outlive minted
// garbage.
const (
	maxCacheStreams = 4096
	maxCacheSubKeys = 1024
)

// clockHand is anything carrying a second-chance hit bit.
type clockHand interface{ hitRef() *atomic.Bool }

func (sc *streamCache) hitRef() *atomic.Bool { return &sc.hit }
func (e *cacheEntry) hitRef() *atomic.Bool   { return &e.hit }

// evictSecondChance removes one victim from a full map: the first entry
// encountered whose hit bit is clear, clearing the set bits it sweeps
// past on the way (they get a second chance — surviving until the next
// sweep reaches them unhit). Go's randomized map iteration stands in for
// the clock hand's position. An entry hit continuously between sweeps
// always has its bit set when inspected, so it is approximately the LRU
// policy's most-protected entry: it can only be evicted in the
// degenerate all-hit sweep, where every entry was touched since the last
// sweep and the (arbitrary) first one is taken.
func evictSecondChance[K comparable, V clockHand](m map[K]V) {
	var fallback K
	haveFallback := false
	for k, v := range m {
		if !haveFallback {
			fallback, haveFallback = k, true
		}
		if h := v.hitRef(); h.Load() {
			h.Store(false)
			continue
		}
		delete(m, k)
		return
	}
	if haveFallback {
		delete(m, fallback)
	}
}

// streamCache holds the entries for one stream at ONE version — the only
// version worth serving. A lookup carrying a newer version resets the
// map wholesale, which is how dot emission and store mutations invalidate
// without ever touching the cache from the write path. Reads vastly
// outnumber writes (entries change only when the version moves), so the
// hit path takes a shared RLock and all of a hot channel's pollers
// proceed in parallel.
type streamCache struct {
	mu      sync.RWMutex
	version uint64
	entries map[int]*cacheEntry
	hit     atomic.Bool // touched since the last eviction sweep
}

// respCache maps stream id → streamCache. The zero value is ready to use
// (the Service embeds these by value, keeping its literal-construction
// idiom).
type respCache struct {
	mu sync.RWMutex
	m  map[string]*streamCache
}

// get returns the cached entry for (stream, key, version), if any.
// Zero-allocation on the hit path: two map reads and two mutexes. Hits
// mark both levels for the second-chance evictor; the load-before-store
// keeps a hot entry's cache line shared across the many readers hammering
// it instead of bouncing on redundant writes.
func (c *respCache) get(stream string, key int, version uint64) (*cacheEntry, bool) {
	c.mu.RLock()
	sc := c.m[stream]
	c.mu.RUnlock()
	if sc == nil {
		return nil, false
	}
	if !sc.hit.Load() {
		sc.hit.Store(true)
	}
	sc.mu.RLock()
	defer sc.mu.RUnlock()
	if sc.version != version {
		return nil, false
	}
	e, ok := sc.entries[key]
	if ok && !e.hit.Load() {
		e.hit.Store(true)
	}
	return e, ok
}

// put publishes an entry for (stream, key, version). A version newer than
// the stream's current one resets the stream (older entries can never be
// addressed again); an older version is dropped — a slow encoder must not
// resurrect state a concurrent writer already superseded.
func (c *respCache) put(stream string, key int, version uint64, e *cacheEntry) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[string]*streamCache)
	}
	sc := c.m[stream]
	if sc == nil {
		if len(c.m) >= maxCacheStreams {
			evictSecondChance(c.m)
		}
		sc = &streamCache{}
		c.m[stream] = sc
	}
	c.mu.Unlock()

	sc.mu.Lock()
	defer sc.mu.Unlock()
	switch {
	case version < sc.version:
		return
	case version > sc.version || sc.entries == nil:
		sc.version = version
		sc.entries = make(map[int]*cacheEntry)
	}
	if len(sc.entries) >= maxCacheSubKeys {
		evictSecondChance(sc.entries)
	}
	sc.entries[key] = e
}

// drop forgets a stream entirely (a closed broadcast).
func (c *respCache) drop(stream string) {
	c.mu.Lock()
	delete(c.m, stream)
	c.mu.Unlock()
}

// serveEntry writes a cached response: 304 Not Modified when the client's
// If-None-Match already names this entry (steady-state pollers transfer
// nothing), otherwise the pre-encoded body. Header values are pre-built
// slices assigned directly into the header map, so the platform-layer
// cost of a cache hit is zero allocations either way.
func serveEntry(w http.ResponseWriter, inm string, e *cacheEntry) {
	h := w.Header()
	h["Etag"] = e.etagHdr
	if etagMatch(inm, e.etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	h["Content-Type"] = jsonCTHeader
	h["Content-Length"] = e.clHdr
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(e.body); err != nil {
		// The poller went away mid-response; nothing to answer.
		_ = err
	}
}

// encodeEntry renders v through the pooled JSON responder and captures the
// bytes into a fresh cache entry. The bytes are exactly what writeJSON
// would have produced, so cached and uncached responses are byte-identical
// by construction.
func encodeEntry(v any, etag string) (*cacheEntry, error) {
	jr := respPool.Get().(*jsonResponder)
	jr.buf.Reset()
	if err := jr.enc.Encode(v); err != nil {
		respPool.Put(jr)
		return nil, err
	}
	body := make([]byte, jr.buf.Len())
	copy(body, jr.buf.Bytes())
	if jr.buf.Cap() <= maxPooledResponse {
		respPool.Put(jr)
	}
	return newCacheEntry(body, etag), nil
}

// etagEpoch salts every validator with this process's start instant.
// Dot-snapshot versions and store revisions are unique only within one
// process lifetime, but with a durable backend the CONTENT outlives the
// process: after a crash-restart, a fresh counter could re-mint a number
// a previous life already handed to pollers, and a returning
// If-None-Match would spuriously revalidate a stale body as a 304. The
// epoch makes every restart a new validator namespace — the worst case
// across a restart is one full 200, never a wrong 304.
var etagEpoch = strconv.FormatUint(uint64(time.Now().UnixNano()), 36)

// dotsETag builds the strong validator for a live-dots response: the
// process epoch, the snapshot version (unique within the process), and
// the clamped cursor fully determine the body.
func dotsETag(version uint64, cursor int) string {
	return `"d` + etagEpoch + "." + strconv.FormatUint(version, 10) + "." + strconv.Itoa(cursor) + `"`
}

// highlightsETag builds the strong validator for a highlights response:
// the process epoch, the store revision, and k fully determine the body.
func highlightsETag(revision uint64, k int) string {
	return `"h` + etagEpoch + "." + strconv.FormatUint(revision, 10) + "." + strconv.Itoa(k) + `"`
}
