package platform

import (
	"strconv"
	"testing"
)

func testEntry() *cacheEntry { return newCacheEntry([]byte(`{}`+"\n"), `"t"`) }

// TestRespCacheHotStreamSurvivesChurn is the flash-crowd regression: one
// channel is continuously hit while thousands of cold channels churn
// through the stream cap. Arbitrary-victim eviction eventually takes the
// hot channel (map iteration order makes it a dice roll per eviction);
// second-chance must never, because every sweep finds its hit bit set.
func TestRespCacheHotStreamSurvivesChurn(t *testing.T) {
	c := &respCache{}
	c.put("hot", 0, 1, testEntry())
	for i := 0; i < 3*maxCacheStreams; i++ {
		if _, ok := c.get("hot", 0, 1); !ok {
			t.Fatalf("hot stream evicted by cold churn after %d cold puts", i)
		}
		c.put("cold-"+strconv.Itoa(i), 0, 1, testEntry())
	}
	if _, ok := c.get("hot", 0, 1); !ok {
		t.Fatal("hot stream evicted by cold churn")
	}
	// The cap itself must still hold: churn may not grow the map.
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	if n > maxCacheStreams {
		t.Fatalf("stream cache grew past its cap: %d > %d", n, maxCacheStreams)
	}
}

// TestRespCacheHotSubKeySurvivesCursorChurn is the same property one
// level down: a real poller crowd's cursor entry must survive a client
// minting adversarial cursor values at the same version.
func TestRespCacheHotSubKeySurvivesCursorChurn(t *testing.T) {
	c := &respCache{}
	c.put("ch", 7, 1, testEntry())
	for i := 0; i < 3*maxCacheSubKeys; i++ {
		if _, ok := c.get("ch", 7, 1); !ok {
			t.Fatalf("hot cursor entry evicted after %d minted cursors", i)
		}
		c.put("ch", 1000+i, 1, testEntry())
	}
	if _, ok := c.get("ch", 7, 1); !ok {
		t.Fatal("hot cursor entry evicted by minted-cursor churn")
	}
	c.mu.RLock()
	sc := c.m["ch"]
	c.mu.RUnlock()
	sc.mu.RLock()
	n := len(sc.entries)
	sc.mu.RUnlock()
	if n > maxCacheSubKeys {
		t.Fatalf("sub-key cache grew past its cap: %d > %d", n, maxCacheSubKeys)
	}
}

// TestRespCacheAllHitSweepStillEvicts pins the degenerate case: when
// every entry was touched since the last sweep, eviction must still make
// room (fallback victim) instead of growing without bound.
func TestRespCacheAllHitSweepStillEvicts(t *testing.T) {
	c := &respCache{}
	for i := 0; i < maxCacheStreams; i++ {
		s := "s" + strconv.Itoa(i)
		c.put(s, 0, 1, testEntry())
		c.get(s, 0, 1) // set every hit bit
	}
	c.put("one-more", 0, 1, testEntry())
	c.mu.RLock()
	n := len(c.m)
	c.mu.RUnlock()
	if n > maxCacheStreams {
		t.Fatalf("all-hit sweep failed to evict: %d > %d", n, maxCacheStreams)
	}
	if _, ok := c.get("one-more", 0, 1); !ok {
		t.Fatal("newest entry missing after all-hit sweep")
	}
}
