package platform

import (
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lightor/internal/cluster"
	"lightor/internal/core"
	"lightor/internal/engine"
	"lightor/internal/play"
)

// Service is the LIGHTOR back end of Figure 5, now engine-backed: it
// serves red dots to the browser-extension front end, logs the interaction
// data the front end reports, refines highlight boundaries in the
// background, and multiplexes live broadcast chat through the session
// engine.
//
//	GET  /healthz                          → 200 ok
//	GET  /api/highlights?video=ID&k=5      → {"dots":[...], "boundaries":[...]}
//	POST /api/interactions?video=ID        → body: JSON array of play events
//	GET  /api/interactions?video=ID&offset=N&limit=M → one page of the log
//	POST /api/refine?video=ID              → 202, enqueue background refinement
//	GET  /api/refine/status?job=ID         → poll a refinement job
//	POST /api/live/chat?channel=ID         → 202, ingest live chat messages
//	POST /api/live/advance?channel=ID&now=T→ 202, advance a quiet stream's clock
//	GET  /api/live/dots?channel=ID&cursor=N→ poll dots emitted since cursor
//	GET  /api/live/stream?channel=ID&cursor=N → SSE push of dots since cursor
//
// The two viewer-facing GETs — /api/highlights and /api/live/dots — are
// the read fast lane: responses carry a strong ETag, a request echoing it
// via If-None-Match gets 304 Not Modified with no body, and changed
// responses serve from a version-keyed cache of pre-encoded bytes
// (invalidated by dot emission, SetRedDots, and refine completion).
// Steady-state polling by millions of viewers costs a lock-free snapshot
// load and a header compare per request.
//
// /api/live/stream is the push lane on top of the same machinery: each
// newly published dot version is encoded once (into the same cache the
// poll lane serves from) and the bytes fan out to every SSE subscriber
// of the channel; see push.go for the hub and the drop-and-resync
// slow-client policy.
type Service struct {
	Store *Store
	// Engine is the concurrent session engine every detection and
	// refinement request routes through.
	Engine *engine.Engine
	// Crawler, when set, fetches chat on demand for unknown videos (the
	// online crawling mode of Section VI-A).
	Crawler *Crawler
	// Cluster, when set, makes this service one node of a channel-sharded
	// cluster: channel/video-keyed requests for keys this node does not
	// own are forwarded (writes) or 307-redirected (reads) to the owner,
	// and the /api/cluster/* handoff endpoints are registered. Nil (the
	// default) is single-node operation, unchanged: handlers check one
	// nil field, so the hot paths keep their zero-allocation contracts.
	// See cluster.go.
	Cluster *cluster.Node
	// Replication, when set (NewReplicator sets it), enables checkpoint
	// replication to ring successors and replica-backed failover: the
	// /api/cluster/replica endpoints store peers' envelopes in the local
	// replica area, and healthz reports channels resumed from replicas.
	// Requires Cluster. See replicator.go.
	Replication *Replicator
	// DefaultK is the number of red dots served when the request does not
	// specify k (default 5).
	DefaultK int
	// DisableReadCache turns off the version-keyed response cache on the
	// read endpoints (every GET re-encodes from live state). Responses
	// stay byte-identical either way — the knob exists for differential
	// tests and for the cold-path benchmarks that measure the uncached
	// read lane.
	DisableReadCache bool
	// MaxSubscribers caps concurrent push subscribers across all channels
	// (default 1<<20); beyond it /api/live/stream answers 503 with a
	// Retry-After.
	MaxSubscribers int
	// PushHeartbeat is the SSE keepalive comment interval (default 15s).
	PushHeartbeat time.Duration
	// PushQueueLen is the per-subscriber frame-queue capacity (default
	// 32). A subscriber that falls further behind is dropped to the
	// coalesced resync path; see push.go.
	PushQueueLen int
	// MaxInflightWrites is the global write-path admission budget: the
	// number of chat/interaction/advance/refine requests allowed in flight
	// at once (default 1024). Past it the node sheds with 503 +
	// Retry-After. See admission.go.
	MaxInflightWrites int
	// MaxChannelBacklog is the per-channel admission budget: the number of
	// mailbox envelopes a channel may have queued before its chat ingest
	// sheds with 429 + Retry-After (default 256). Bounds how far one
	// flash-crowded channel can fall behind without touching cold
	// channels.
	MaxChannelBacklog int
	// DisableAdmission turns off both admission budgets (requests are
	// never shed; queues grow without bound under overload). Mirrors
	// DisableReadCache: the knob exists for the differential benchmarks
	// that measure what admission control buys.
	DisableAdmission bool

	// Read-path response caches: pre-encoded bodies keyed by
	// (channel, cursor, dot-snapshot version) for /api/live/dots and
	// (video, k, store revision) for /api/highlights. Dot emission,
	// SetRedDots, and refine completion invalidate by bumping the
	// version/revision — stale entries simply stop being addressed.
	dotsCache respCache
	hlCache   respCache

	// Cold-start detection single-flight: N concurrent first readers of
	// the same video collapse onto one Initializer.Detect run.
	flightMu sync.Mutex
	flights  map[string]*detectFlight

	// push is the SSE broadcast hub (push.go); pushOnce wires it to the
	// engine's dot-publication hook on first use.
	push     dotHub
	pushOnce sync.Once

	// Observability + admission state (admission.go): per-endpoint latency
	// histograms, shed counters by cause, and the global write-path
	// in-flight count.
	metrics        endpointMetrics
	shed           shedCounters
	inflightWrites atomic.Int64
}

// HighlightsResponse is the payload of GET /api/highlights.
type HighlightsResponse struct {
	VideoID    string          `json:"video_id"`
	Dots       []core.RedDot   `json:"dots"`
	Boundaries []core.Interval `json:"boundaries,omitempty"`
}

// RefineJobResponse is the payload of POST /api/refine and
// GET /api/refine/status: the job's current state, with boundaries once it
// finishes.
type RefineJobResponse struct {
	Job        string           `json:"job"`
	VideoID    string           `json:"video_id"`
	Status     engine.JobStatus `json:"status"`
	Dots       []core.RedDot    `json:"dots,omitempty"`
	Boundaries []core.Interval  `json:"boundaries,omitempty"`
}

// LiveIngestResponse is the payload of POST /api/live/chat and /advance.
type LiveIngestResponse struct {
	Channel  string `json:"channel"`
	Accepted int    `json:"accepted"`
}

// LiveDotsResponse is the payload of GET /api/live/dots. Cursor is an
// offset into the channel's emission history; pass it back to receive only
// dots emitted after this poll.
type LiveDotsResponse struct {
	Channel string        `json:"channel"`
	Dots    []core.RedDot `json:"dots"`
	Cursor  int           `json:"cursor"`
}

// Handler returns the HTTP handler implementing the service API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// The heartbeat probe target: a static body with no JSON assembly or
	// state walks, cheap enough to answer once per second per peer times
	// the whole cluster. Operators and dashboards keep /api/healthz.
	mux.HandleFunc("GET /api/ping", handlePing)
	// Every request-scoped endpoint is timed into its own histogram
	// (surfaced on /api/healthz); /api/live/stream is not — an SSE
	// request's duration is its subscription lifetime, not a latency.
	mux.HandleFunc("GET /api/highlights", timed(&s.metrics.highlights, s.handleHighlights))
	mux.HandleFunc("POST /api/interactions", timed(&s.metrics.interactionsPost, s.handleInteractions))
	mux.HandleFunc("GET /api/interactions", timed(&s.metrics.interactionsGet, s.handleInteractionsPage))
	mux.HandleFunc("POST /api/refine", timed(&s.metrics.refine, s.handleRefine))
	mux.HandleFunc("GET /api/refine/status", timed(&s.metrics.refineStatus, s.handleRefineStatus))
	mux.HandleFunc("POST /api/live/chat", timed(&s.metrics.liveChat, s.handleLiveChat))
	mux.HandleFunc("POST /api/live/advance", timed(&s.metrics.liveAdvance, s.handleLiveAdvance))
	mux.HandleFunc("GET /api/live/dots", timed(&s.metrics.liveDots, s.handleLiveDots))
	mux.HandleFunc("GET /api/live/stream", s.handleLiveStream)
	mux.HandleFunc("DELETE /api/live/session", timed(&s.metrics.liveClose, s.handleLiveClose))
	mux.HandleFunc("GET /api/healthz", s.handleHealthz)
	if s.Cluster != nil {
		// The control plane shares the public listener but not the public
		// trust level: it can inject detector state, repin routing, and
		// mark nodes down, so every endpoint sits behind the shared
		// cluster secret (see requireClusterKey).
		mux.HandleFunc("POST /api/cluster/handoff", s.requireClusterKey(s.handleClusterHandoff))
		mux.HandleFunc("POST /api/cluster/resume", s.requireClusterKey(s.handleClusterResume))
		mux.HandleFunc("POST /api/cluster/route", s.requireClusterKey(s.handleClusterRoute))
		mux.HandleFunc("POST /api/cluster/down", s.requireClusterKey(s.handleClusterDown))
		mux.HandleFunc("GET /api/cluster/owned", s.requireClusterKey(s.handleClusterOwned))
		mux.HandleFunc("POST /api/cluster/replica", s.requireClusterKey(s.handleClusterReplica))
		mux.HandleFunc("DELETE /api/cluster/replica", s.requireClusterKey(s.handleClusterReplica))
	}
	s.initPush()
	return mux
}

func (s *Service) defaultK() int {
	if s.DefaultK > 0 {
		return s.DefaultK
	}
	return 5
}

func (s *Service) handleHighlights(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	k := s.defaultK()
	if kq := r.URL.Query().Get("k"); kq != "" {
		parsed, err := strconv.Atoi(kq)
		if err != nil || parsed <= 0 {
			http.Error(w, "invalid k", http.StatusBadRequest)
			return
		}
		k = parsed
	}
	if !s.route(w, r, id, routeRedirect) {
		return
	}

	// The serving path reads through the zero-copy HighlightView — no
	// deep clone of dots/boundaries per poll, and the chat log (which
	// this handler only needs for cold-start detection) is a shared
	// pointer, never copied.
	view, ok := s.Store.HighlightView(id)
	if !ok || view.Chat == nil {
		// Online crawling (Section VI-A): when a viewer opens a video the
		// store has never seen, fetch its chat from the platform API on
		// the fly.
		if s.Crawler == nil {
			http.Error(w, fmt.Sprintf("video %q not crawled", id), http.StatusNotFound)
			return
		}
		tv, err := s.Crawler.LookupVideo(id)
		if err != nil {
			http.Error(w, fmt.Sprintf("video %q unknown to the platform: %v", id, err), http.StatusNotFound)
			return
		}
		if err := s.Crawler.CrawlVideo(tv); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		view, ok = s.Store.HighlightView(id)
		if !ok || view.Chat == nil {
			http.Error(w, fmt.Sprintf("video %q could not be crawled", id), http.StatusNotFound)
			return
		}
	}
	if len(view.RedDots) < k {
		if err := s.detectColdStart(id, k, view); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.ServeHighlights(w, id, k, r.Header.Get("If-None-Match"))
}

// detectFlight is one in-flight cold-start detection; concurrent readers
// of the same (video, k) wait on done instead of re-running Detect.
type detectFlight struct {
	done chan struct{}
	err  error
}

// detectColdStart runs batch detection for a video whose stored dots are
// insufficient and persists the result, single-flighted per (video, k):
// when a cold video suddenly gets N concurrent viewers — the exact
// many-readers shape this service is built for — exactly one request pays
// the detection; the rest wait on its result instead of stampeding the
// initializer (and the store) with N identical runs.
func (s *Service) detectColdStart(id string, k int, view HighlightView) error {
	key := id + "\x00" + strconv.Itoa(k)
	s.flightMu.Lock()
	if f, ok := s.flights[key]; ok {
		s.flightMu.Unlock()
		<-f.done
		return f.err
	}
	if s.flights == nil {
		s.flights = make(map[string]*detectFlight)
	}
	f := &detectFlight{done: make(chan struct{})}
	s.flights[key] = f
	s.flightMu.Unlock()

	var err error
	// Deferred so a panic inside detection can never wedge the key: the
	// flight is always removed and its waiters always released, even if
	// Detect blows up on pathological input (net/http recovers the
	// panicking handler; the herd proceeds and serves whatever the store
	// holds).
	defer func() {
		f.err = err
		s.flightMu.Lock()
		delete(s.flights, key)
		s.flightMu.Unlock()
		close(f.done)
	}()

	// Double-check under flight leadership: a previous flight may have
	// landed its dots between the caller's view load and now — flights
	// are removed only after SetRedDots is applied, so a fresh view
	// already satisfying k proves the work is done.
	if v, ok := s.Store.HighlightView(id); !ok || len(v.RedDots) < k {
		var dots []core.RedDot
		dots, err = s.Engine.Initializer().Detect(view.Chat, view.Duration, k)
		if err == nil {
			// SetRedDots bumps the store revision, so every cached
			// response for this video is invalidated the moment the
			// dots land.
			err = s.Store.SetRedDots(id, dots)
		}
	}
	return err
}

// ServeHighlights serves the highlights payload for (video, k) onto w,
// honoring If-None-Match — the router-free read fast lane behind
// GET /api/highlights (embedders with their own mux can call it
// directly; it does not crawl or cold-start, the handler does that).
// Steady state is a cache hit: one revision load, one map lookup, and
// either a 304 or one Write of the pre-encoded body — no JSON encoding,
// no store cloning, zero allocations.
func (s *Service) ServeHighlights(w http.ResponseWriter, video string, k int, ifNoneMatch string) {
	if k <= 0 {
		k = s.defaultK()
	}
	// Revision loaded BEFORE the view (see Store.bumpRev): a racing
	// writer can at worst pair an old revision with newer data, which
	// re-encodes on the next poll — never a new revision with stale data.
	rev := s.Store.Revision(video)
	if !s.DisableReadCache {
		if e, ok := s.hlCache.get(video, k, rev); ok {
			serveEntry(w, ifNoneMatch, e)
			return
		}
	}
	view, ok := s.Store.HighlightView(video)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown video %q", video), http.StatusNotFound)
		return
	}
	dots := view.RedDots
	if len(dots) > k {
		dots = dots[:k]
	}
	e, err := encodeEntry(HighlightsResponse{VideoID: video, Dots: dots, Boundaries: view.Boundaries},
		highlightsETag(rev, k))
	if err != nil {
		log.Printf("platform: encoding highlights response: %v", err)
		http.Error(w, "encoding response failed", http.StatusInternalServerError)
		return
	}
	if !s.DisableReadCache {
		s.hlCache.put(video, k, rev, e)
	}
	serveEntry(w, ifNoneMatch, e)
}

func (s *Service) handleInteractions(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	if !s.route(w, r, id, routeForward) {
		return
	}
	if !s.admitStore(w) {
		return
	}
	if !s.acquireWrite(w) {
		return
	}
	defer s.releaseWrite()
	dec := eventDecPool.Get().(*streamDecoder[play.Event])
	events, err := dec.decode(r.Body)
	if err != nil {
		dec.release(&eventDecPool)
		http.Error(w, fmt.Sprintf("bad interaction payload: %v", err), http.StatusBadRequest)
		return
	}
	// The store copies (and, when durable, marshals) the events before
	// returning, so the pooled slice can be released right after.
	err = s.Store.LogEvents(id, events)
	dec.release(&eventDecPool)
	if err != nil {
		if errors.Is(err, ErrDegraded) {
			// The durable backend fail-stopped mid-request (or between the
			// admission check and the append): shed, don't 404.
			s.shed.degraded.Add(1)
			shedError(w, http.StatusServiceUnavailable, degradedRetryAfterSeconds, "degraded", err.Error())
			return
		}
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// InteractionsResponse is the payload of GET /api/interactions: one page
// of a video's retained interaction-event log. Offset indexes the retained
// log (0 = oldest retained event); Total is the retained count, so clients
// page with offset += len(events) until offset >= total.
type InteractionsResponse struct {
	VideoID string       `json:"video_id"`
	Events  []play.Event `json:"events"`
	Offset  int          `json:"offset"`
	Total   int          `json:"total"`
}

// interactionsPageLimit caps one page of GET /api/interactions. Reads are
// paginated so a long-lived video's log (bounded only by the backend's
// retention cap) can never be forced into a single response.
const (
	defaultInteractionsPage = 500
	maxInteractionsPage     = 5000
)

// handleInteractionsPage serves one page of a video's interaction log.
func (s *Service) handleInteractionsPage(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	if !s.route(w, r, id, routeRedirect) {
		return
	}
	if !s.Store.HasVideo(id) {
		http.Error(w, fmt.Sprintf("unknown video %q", id), http.StatusNotFound)
		return
	}
	offset := 0
	if oq := r.URL.Query().Get("offset"); oq != "" {
		parsed, err := strconv.Atoi(oq)
		if err != nil || parsed < 0 {
			http.Error(w, "invalid offset", http.StatusBadRequest)
			return
		}
		offset = parsed
	}
	limit := defaultInteractionsPage
	if lq := r.URL.Query().Get("limit"); lq != "" {
		parsed, err := strconv.Atoi(lq)
		if err != nil || parsed <= 0 {
			http.Error(w, "invalid limit", http.StatusBadRequest)
			return
		}
		limit = parsed
	}
	if limit > maxInteractionsPage {
		limit = maxInteractionsPage
	}
	events, total := s.Store.EventsPage(id, offset, limit)
	if events == nil {
		events = []play.Event{}
	}
	writeJSON(w, InteractionsResponse{VideoID: id, Events: events, Offset: offset, Total: total})
}

// snapshotPlaySource feeds the extractor a per-job snapshot of the
// video's sessionized plays. Reading the store once per job keeps the
// fan-out's data fetch O(events) total instead of O(dots × iterations ×
// events) — the same freshness the old synchronous handler had.
type snapshotPlaySource []play.Play

func (s snapshotPlaySource) Interactions(dot float64) []play.Play { return s }

// handleRefine enqueues background refinement of a video's red dots and
// returns 202 immediately. Refined dots and boundaries are persisted to
// the store when the job completes; poll /api/refine/status (or re-fetch
// /api/highlights) to observe them.
func (s *Service) handleRefine(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	// Refinement runs on the video's owner (its interaction log lives
	// there); the job id in the 202 is node-local, so poll status on the
	// node that answered.
	if !s.route(w, r, id, routeForward) {
		return
	}
	if !s.admitStore(w) {
		return
	}
	if !s.acquireWrite(w) {
		return
	}
	defer s.releaseWrite()
	rec, ok := s.Store.Video(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown video %q", id), http.StatusNotFound)
		return
	}
	store := s.Store
	job, err := s.Engine.Refine().Enqueue(id, rec.RedDots,
		snapshotPlaySource(store.Plays(id)),
		func(done engine.RefineJob) {
			dots := make([]core.RedDot, len(done.Results))
			spans := make([]core.Interval, len(done.Results))
			for i, res := range done.Results {
				dots[i] = res.Dot
				dots[i].Time = res.Boundary.Start
				spans[i] = res.Boundary
			}
			// Best effort: the video can only vanish if the store was
			// swapped out underneath a running service.
			_ = store.SetRefined(id, dots, spans)
		})
	if err != nil {
		// ErrRefineBusy and ErrClosed are sheds (429/503 + Retry-After);
		// anything else is a server fault.
		s.writeLiveError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusAccepted, refineResponse(job))
}

func (s *Service) handleRefineStatus(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("job")
	if id == "" {
		http.Error(w, "missing job parameter", http.StatusBadRequest)
		return
	}
	job, ok := s.Engine.Refine().Job(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown refine job %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, refineResponse(job))
}

func refineResponse(job engine.RefineJob) RefineJobResponse {
	resp := RefineJobResponse{
		Job:     job.ID,
		VideoID: job.VideoID,
		Status:  job.Status,
		Dots:    job.Dots,
	}
	if job.Status == engine.JobDone {
		// Copy before adjusting dot times to the refined boundary starts:
		// resp.Dots aliases the job snapshot's slice, and mutating it in
		// place would corrupt whatever handed us the job — repeated
		// status polls must serve identical payloads, never progressively
		// re-adjusted times.
		resp.Dots = make([]core.RedDot, len(job.Dots))
		copy(resp.Dots, job.Dots)
		resp.Boundaries = make([]core.Interval, len(job.Results))
		for i, res := range job.Results {
			resp.Dots[i].Time = res.Boundary.Start
			resp.Boundaries[i] = res.Boundary
		}
	}
	return resp
}

// handleLiveChat ingests a batch of live chat messages for a channel,
// opening its session on first contact. This is the burst hot path: the
// body stream-decodes through a pooled decoder into a pooled message
// slice, and the whole batch enters the engine as ONE mailbox envelope
// (one watermark check, one lock, one dispatch — see Session.Ingest), so
// a goal-moment spike costs per-message work only inside the detector.
// The engine processes the batch asynchronously; emitted dots surface on
// /api/live/dots.
func (s *Service) handleLiveChat(w http.ResponseWriter, r *http.Request) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		http.Error(w, "missing channel parameter", http.StatusBadRequest)
		return
	}
	if !s.route(w, r, channel, routeForward) {
		return
	}
	// Admission runs before the body decode: a shed request under overload
	// costs two atomic checks, not a JSON parse. admitStore runs after
	// routing so a degraded node still forwards writes it does not own.
	if !s.admitStore(w) {
		return
	}
	if !s.acquireWrite(w) {
		return
	}
	defer s.releaseWrite()
	if !s.admitChannelWrite(w, channel) {
		return
	}
	ci := chatIngestPool.Get().(*chatIngest)
	msgs, err := ci.decode(r.Body)
	if err != nil {
		ci.release()
		http.Error(w, fmt.Sprintf("bad chat payload: %v", err), http.StatusBadRequest)
		return
	}
	sess, err := s.Engine.Sessions().GetOrOpen(channel)
	if err != nil {
		ci.release()
		s.writeLiveError(w, err)
		return
	}
	// Ingest copies the batch into the engine's own pooled mailbox buffer,
	// so the decoded slice can be recycled as soon as it returns.
	err = sess.Ingest(msgs...)
	accepted := len(msgs)
	ci.release()
	if err != nil {
		s.writeLiveError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusAccepted, LiveIngestResponse{Channel: channel, Accepted: accepted})
}

// handleLiveAdvance moves a quiet channel's stream clock so pending
// windows can finalize without chat traffic.
func (s *Service) handleLiveAdvance(w http.ResponseWriter, r *http.Request) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		http.Error(w, "missing channel parameter", http.StatusBadRequest)
		return
	}
	if !s.route(w, r, channel, routeForward) {
		return
	}
	if !s.admitStore(w) {
		return
	}
	if !s.acquireWrite(w) {
		return
	}
	defer s.releaseWrite()
	if !s.admitChannelWrite(w, channel) {
		return
	}
	now, err := strconv.ParseFloat(r.URL.Query().Get("now"), 64)
	if err != nil || now < 0 {
		http.Error(w, "invalid now parameter", http.StatusBadRequest)
		return
	}
	sess, ok := s.Engine.Sessions().Get(channel)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown channel %q", channel), http.StatusNotFound)
		return
	}
	if err := sess.Advance(now); err != nil {
		s.writeLiveError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusAccepted, LiveIngestResponse{Channel: channel})
}

// handleLiveClose ends a broadcast: the session flushes its remaining
// windows and is removed, freeing its slot (and recovering channels whose
// clock was poisoned by a stray advance). The response carries the
// channel's full emission history.
func (s *Service) handleLiveClose(w http.ResponseWriter, r *http.Request) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		http.Error(w, "missing channel parameter", http.StatusBadRequest)
		return
	}
	if !s.route(w, r, channel, routeForward) {
		return
	}
	// Degraded mode sheds close too: the closing flush advances state that
	// could never be checkpointed, and the checkpoint delete could not be
	// made durable — the whole mutation family is read-only until restart.
	if !s.admitStore(w) {
		return
	}
	dots, err := s.Engine.Sessions().CloseSession(r.Context(), channel)
	if errors.Is(err, engine.ErrUnknownSession) {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if err != nil {
		s.writeLiveError(w, err)
		return
	}
	// Hygiene, not correctness: dot-snapshot versions are unique across
	// sessions, so a successor broadcast on this channel could never hit
	// these entries — dropping them just frees the memory promptly.
	s.dotsCache.drop(channel)
	// If a past handoff pinned this channel off its ring position, the
	// pin (and the old owner's re-open bar) dies with the broadcast.
	s.retireOverride(r, channel)
	if dots == nil {
		dots = []core.RedDot{}
	}
	writeJSON(w, LiveDotsResponse{Channel: channel, Dots: dots, Cursor: len(dots)})
}

func (s *Service) handleLiveDots(w http.ResponseWriter, r *http.Request) {
	channel := r.URL.Query().Get("channel")
	if channel == "" {
		http.Error(w, "missing channel parameter", http.StatusBadRequest)
		return
	}
	if !s.route(w, r, channel, routeRedirect) {
		return
	}
	cursor := 0
	if cq := r.URL.Query().Get("cursor"); cq != "" {
		parsed, err := strconv.Atoi(cq)
		if err != nil || parsed < 0 {
			http.Error(w, "invalid cursor", http.StatusBadRequest)
			return
		}
		cursor = parsed
	}
	s.ServeLiveDots(w, channel, cursor, r.Header.Get("If-None-Match"))
}

// ServeLiveDots serves the live-dots payload for (channel, cursor) onto
// w, honoring If-None-Match — the router-free read fast lane behind
// GET /api/live/dots. The engine read is a lock-free snapshot load
// (engine.Session.DotsPage): it never contends with ingest,
// checkpointing, or other pollers. Steady state is a cache hit or a 304:
// one snapshot load, one map lookup, and either no body at all or one
// Write of the pre-encoded bytes — zero allocations on the platform
// layer, no JSON work, no per-poll copying of the emission history.
func (s *Service) ServeLiveDots(w http.ResponseWriter, channel string, cursor int, ifNoneMatch string) {
	sess, ok := s.Engine.Sessions().Get(channel)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown channel %q", channel), http.StatusNotFound)
		return
	}
	e, _, _, _, _, err := s.liveDotsEntry(sess, channel, cursor)
	if err != nil {
		log.Printf("platform: encoding live dots response: %v", err)
		http.Error(w, "encoding response failed", http.StatusInternalServerError)
		return
	}
	serveEntry(w, ifNoneMatch, e)
}

// liveDotsEntry returns the pre-encoded live-dots response for (channel,
// cursor) at the session's current snapshot version — the shared core of
// the poll lane (ServeLiveDots) and the push lane (the broadcast hub and
// its resyncs). ck is the clamped cursor the page actually starts at
// (the cache sub-key, so every past-the-end cursor shares the tip
// entry), next the new cursor, ver the snapshot version, and encoded
// whether this call performed the JSON encode (false = cache hit).
// Because both lanes address the same (channel, ck, ver) entries, a
// version broadcast to push subscribers pre-warms the poll cache and
// vice versa.
func (s *Service) liveDotsEntry(sess *engine.Session, channel string, cursor int) (e *cacheEntry, ck, next int, ver uint64, encoded bool, err error) {
	dots, next, ver := sess.DotsPage(cursor)
	ck = next - len(dots)
	if !s.DisableReadCache {
		if e, ok := s.dotsCache.get(channel, ck, ver); ok {
			return e, ck, next, ver, false, nil
		}
	}
	if dots == nil {
		dots = []core.RedDot{}
	}
	e, err = encodeEntry(LiveDotsResponse{Channel: channel, Dots: dots, Cursor: next}, dotsETag(ver, ck))
	if err != nil {
		return nil, ck, next, ver, false, err
	}
	if !s.DisableReadCache {
		s.dotsCache.put(channel, ck, ver, e)
	}
	return e, ck, next, ver, true, nil
}

// writeLiveError maps engine errors onto HTTP statuses: out-of-order chat
// is the caller's bug (409); drain, handoff, the session cap, and refine
// admission are sheds — temporary, counted, and always answered with
// Retry-After through shedError.
func (s *Service) writeLiveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, engine.ErrOutOfOrder):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, engine.ErrClosed):
		s.shed.draining.Add(1)
		shedError(w, http.StatusServiceUnavailable, drainRetryAfterSeconds, "draining", "service is draining")
	case errors.Is(err, engine.ErrHandoff):
		s.shed.handoff.Add(1)
		shedError(w, http.StatusServiceUnavailable, handoffRetryAfterSeconds, "handoff", err.Error())
	case errors.Is(err, engine.ErrTooManySessions):
		s.shed.sessionsCap.Add(1)
		shedError(w, http.StatusTooManyRequests, capacityRetryAfterSeconds, "sessions_cap", err.Error())
	case errors.Is(err, engine.ErrRefineBusy):
		s.shed.refineBusy.Add(1)
		shedError(w, http.StatusTooManyRequests, capacityRetryAfterSeconds, "refine_busy", err.Error())
	case errors.Is(err, ErrDegraded):
		// A store write surfaced through an engine path (blocking
		// checkpoint, handoff detach) after the backend fail-stopped.
		s.shed.degraded.Add(1)
		shedError(w, http.StatusServiceUnavailable, degradedRetryAfterSeconds, "degraded", err.Error())
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
