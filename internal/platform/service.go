package platform

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"lightor/internal/core"
	"lightor/internal/play"
)

// Service is the LIGHTOR back end of Figure 5: it serves red dots to the
// browser-extension front end, logs the interaction data the front end
// reports, and refines highlight boundaries from that data.
//
//	GET  /healthz                         → 200 ok
//	GET  /api/highlights?video=ID&k=5     → {"dots":[...], "boundaries":[...]}
//	POST /api/interactions?video=ID       → body: JSON array of play events
//	POST /api/refine?video=ID             → re-run the extractor on logged data
type Service struct {
	Store       *Store
	Initializer *core.Initializer
	Extractor   *core.Extractor
	// Crawler, when set, fetches chat on demand for unknown videos (the
	// online crawling mode of Section VI-A).
	Crawler *Crawler
	// DefaultK is the number of red dots served when the request does not
	// specify k (default 5).
	DefaultK int
}

// HighlightsResponse is the payload of GET /api/highlights.
type HighlightsResponse struct {
	VideoID    string          `json:"video_id"`
	Dots       []core.RedDot   `json:"dots"`
	Boundaries []core.Interval `json:"boundaries,omitempty"`
}

// Handler returns the HTTP handler implementing the service API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /api/highlights", s.handleHighlights)
	mux.HandleFunc("POST /api/interactions", s.handleInteractions)
	mux.HandleFunc("POST /api/refine", s.handleRefine)
	return mux
}

func (s *Service) defaultK() int {
	if s.DefaultK > 0 {
		return s.DefaultK
	}
	return 5
}

func (s *Service) handleHighlights(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	k := s.defaultK()
	if kq := r.URL.Query().Get("k"); kq != "" {
		parsed, err := strconv.Atoi(kq)
		if err != nil || parsed <= 0 {
			http.Error(w, "invalid k", http.StatusBadRequest)
			return
		}
		k = parsed
	}

	rec, ok := s.Store.Video(id)
	if !ok || rec.Chat == nil {
		// Online crawling (Section VI-A): when a viewer opens a video the
		// store has never seen, fetch its chat from the platform API on
		// the fly.
		if s.Crawler == nil {
			http.Error(w, fmt.Sprintf("video %q not crawled", id), http.StatusNotFound)
			return
		}
		tv, err := s.Crawler.LookupVideo(id)
		if err != nil {
			http.Error(w, fmt.Sprintf("video %q unknown to the platform: %v", id, err), http.StatusNotFound)
			return
		}
		if err := s.Crawler.CrawlVideo(tv); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		rec, ok = s.Store.Video(id)
		if !ok || rec.Chat == nil {
			http.Error(w, fmt.Sprintf("video %q could not be crawled", id), http.StatusNotFound)
			return
		}
	}
	if len(rec.RedDots) < k {
		dots, err := s.Initializer.Detect(rec.Chat, rec.Duration, k)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if err := s.Store.SetRedDots(id, dots); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		rec.RedDots = dots
	}
	dots := rec.RedDots
	if len(dots) > k {
		dots = dots[:k]
	}
	writeJSON(w, HighlightsResponse{VideoID: id, Dots: dots, Boundaries: rec.Boundaries})
}

func (s *Service) handleInteractions(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	var events []play.Event
	if err := json.NewDecoder(r.Body).Decode(&events); err != nil {
		http.Error(w, fmt.Sprintf("bad interaction payload: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.Store.LogEvents(id, events); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// storePlaySource feeds the extractor from the store's logged events.
type storePlaySource struct {
	plays []play.Play
}

func (s storePlaySource) Interactions(dot float64) []play.Play { return s.plays }

func (s *Service) handleRefine(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	if id == "" {
		http.Error(w, "missing video parameter", http.StatusBadRequest)
		return
	}
	rec, ok := s.Store.Video(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown video %q", id), http.StatusNotFound)
		return
	}
	plays := s.Store.Plays(id)
	src := storePlaySource{plays: plays}
	boundaries := make([]core.Interval, 0, len(rec.RedDots))
	dots := append([]core.RedDot(nil), rec.RedDots...)
	for i, dot := range dots {
		seed := core.Interval{Start: dot.Time, End: dot.Time + s.Extractor.Config().DefaultSpan}
		// One Step per refine call: the service refines incrementally as
		// interaction data accumulates, rather than looping on a fixed
		// snapshot.
		res := s.Extractor.Step(seed, src.plays)
		boundaries = append(boundaries, res.Refined)
		dots[i].Time = res.Refined.Start
	}
	if err := s.Store.SetBoundaries(id, boundaries); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := s.Store.SetRedDots(id, dots); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, HighlightsResponse{VideoID: id, Dots: dots, Boundaries: boundaries})
}
