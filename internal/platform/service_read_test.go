package platform

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/engine"
	"lightor/internal/play"
)

// get performs a GET with an optional If-None-Match header and returns
// status, ETag, and body.
func condGet(t *testing.T, url, inm string) (int, string, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inm != "" {
		req.Header.Set("If-None-Match", inm)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("ETag"), body
}

// liveTestEngine builds an engine tuned to emit plentiful dots, so
// version-invalidation is observable within one simulated stream.
func liveTestEngine(t *testing.T, init *core.Initializer) *engine.Engine {
	t.Helper()
	ext, err := core.NewExtractor(core.DefaultExtractorConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(init, ext, engine.Config{Warmup: -1, Threshold: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := eng.Close(ctx); err != nil {
			t.Errorf("engine close: %v", err)
		}
	})
	return eng
}

// ingestLive posts one chat batch and fails on a non-202.
func ingestLive(t *testing.T, base, channel string, msgs []chat.Message) {
	t.Helper()
	body, err := json.Marshal(msgs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/live/chat?channel="+channel, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("live chat status = %d, want 202", resp.StatusCode)
	}
}

// waitCursor polls /api/live/dots until the cursor reaches at least min
// (the asynchronous mailbox has drained far enough), returning the last
// response.
func waitCursor(t *testing.T, base, channel string, min int) LiveDotsResponse {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		r, err := http.Get(base + "/api/live/dots?channel=" + channel)
		if err != nil {
			t.Fatal(err)
		}
		var dots LiveDotsResponse
		if err := json.NewDecoder(r.Body).Decode(&dots); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if dots.Cursor >= min {
			return dots
		}
		if time.Now().After(deadline) {
			t.Fatalf("cursor stuck at %d, want >= %d", dots.Cursor, min)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestLiveDotsETagContract drives the documented conditional-GET contract
// end to end: every 200 carries a strong ETag; echoing it back yields a
// bodyless 304 while nothing changed; a new dot emission changes the
// version, so the same If-None-Match gets a fresh 200 with a new ETag;
// distinct cursors get distinct validators; and serving under read load
// never perturbs session state (watermark, pending work, dot history).
func TestLiveDotsETagContract(t *testing.T) {
	init, target := trainedInitializer(t)
	svc := &Service{Store: NewStore(), Engine: liveTestEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	msgs := target.Chat.Log.Messages()
	half := len(msgs) / 2
	ingestLive(t, srv.URL, "etag-ch", msgs[:half])
	first := waitCursor(t, srv.URL, "etag-ch", 1)

	url := srv.URL + "/api/live/dots?channel=etag-ch"
	status, etag, body := condGet(t, url, "")
	if status != http.StatusOK || etag == "" {
		t.Fatalf("GET = %d with ETag %q, want 200 with a validator", status, etag)
	}

	// Steady-state poller: nothing changed, so the echo costs no bytes.
	status304, etag304, body304 := condGet(t, url, etag)
	if status304 != http.StatusNotModified || len(body304) != 0 {
		t.Fatalf("conditional GET = %d with %d body bytes, want bodyless 304", status304, len(body304))
	}
	if etag304 != etag {
		t.Fatalf("304 ETag %q != 200 ETag %q", etag304, etag)
	}

	// RFC 7232 wildcard: If-None-Match: * matches any current
	// representation.
	if s, _, b := condGet(t, url, "*"); s != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("If-None-Match: * = %d with %d body bytes, want bodyless 304", s, len(b))
	}

	// Distinct cursors are distinct resources with distinct validators.
	statusC, etagC, bodyC := condGet(t, url+"&cursor=1", "")
	if statusC != http.StatusOK || etagC == etag {
		t.Fatalf("cursor=1 GET = %d ETag %q, want 200 with a different validator than %q", statusC, etagC, etag)
	}
	if bytes.Equal(bodyC, body) && first.Cursor > 1 {
		t.Error("cursor=1 body identical to cursor=0 body")
	}

	sess, ok := svc.Engine.Sessions().Get("etag-ch")
	if !ok {
		t.Fatal("session vanished")
	}
	wmBefore := sess.Watermark()
	verBefore := sess.DotsVersion()
	for i := 0; i < 50; i++ { // read load: cache hits and 304s
		condGet(t, url, "")
		condGet(t, url, etag)
	}
	if wm := sess.Watermark(); wm != wmBefore {
		t.Errorf("read load moved the watermark: %g -> %g", wmBefore, wm)
	}
	if ver := sess.DotsVersion(); ver != verBefore {
		t.Errorf("read load moved the dot version: %d -> %d", verBefore, ver)
	}
	if again := waitCursor(t, srv.URL, "etag-ch", 0); again.Cursor != first.Cursor {
		t.Errorf("read load changed the cursor: %d -> %d", first.Cursor, again.Cursor)
	}

	// New emissions invalidate: feed the rest of the stream, wait for
	// more dots, and the old validator must stop matching.
	ingestLive(t, srv.URL, "etag-ch", msgs[half:])
	resp, err := http.Post(srv.URL+"/api/live/advance?channel=etag-ch&now=1e9", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitCursor(t, srv.URL, "etag-ch", first.Cursor+1)

	statusNew, etagNew, bodyNew := condGet(t, url, etag)
	if statusNew != http.StatusOK {
		t.Fatalf("conditional GET after emission = %d, want 200 (stale validator)", statusNew)
	}
	if etagNew == etag {
		t.Error("ETag unchanged although dots were emitted")
	}
	if bytes.Equal(bodyNew, body) {
		t.Error("body unchanged although dots were emitted")
	}
}

// TestLiveDotsReadDifferential proves the fast lane changes no observable
// bytes: cached, uncached (DisableReadCache), and repeat-cached responses
// for the same (channel, cursor, version) are byte-identical, and agree
// with a from-scratch encoding of the engine's own state.
func TestLiveDotsReadDifferential(t *testing.T) {
	init, target := trainedInitializer(t)
	store := NewStore()
	eng := liveTestEngine(t, init)
	cached := &Service{Store: store, Engine: eng}
	uncached := &Service{Store: store, Engine: eng, DisableReadCache: true}
	srvCached := httptest.NewServer(cached.Handler())
	defer srvCached.Close()
	srvUncached := httptest.NewServer(uncached.Handler())
	defer srvUncached.Close()

	msgs := target.Chat.Log.Messages()
	ingestLive(t, srvCached.URL, "diff-ch", msgs)
	final := waitCursor(t, srvCached.URL, "diff-ch", 1)

	for _, cursor := range []int{0, 1, final.Cursor, final.Cursor + 50} {
		q := fmt.Sprintf("/api/live/dots?channel=diff-ch&cursor=%d", cursor)
		s1, e1, b1 := condGet(t, srvCached.URL+q, "") // cold: fills the cache
		s2, e2, b2 := condGet(t, srvCached.URL+q, "") // hot: serves from it
		s3, e3, b3 := condGet(t, srvUncached.URL+q, "")
		if s1 != 200 || s2 != 200 || s3 != 200 {
			t.Fatalf("cursor %d: statuses %d/%d/%d, want all 200", cursor, s1, s2, s3)
		}
		if !bytes.Equal(b1, b2) || !bytes.Equal(b1, b3) {
			t.Fatalf("cursor %d: cached/hot/uncached bodies diverge:\n%s\n%s\n%s", cursor, b1, b2, b3)
		}
		if e1 != e2 || e1 != e3 {
			t.Fatalf("cursor %d: ETags diverge: %q %q %q", cursor, e1, e2, e3)
		}

		// And all of them agree with a from-scratch encoding of the
		// engine's state through the public API.
		sess, _ := eng.Sessions().Get("diff-ch")
		dots, next := sess.Dots(cursor)
		if dots == nil {
			dots = []core.RedDot{}
		}
		var want bytes.Buffer
		if err := json.NewEncoder(&want).Encode(LiveDotsResponse{Channel: "diff-ch", Dots: dots, Cursor: next}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b1, want.Bytes()) {
			t.Fatalf("cursor %d: served bytes diverge from reference encoding:\n%s\n%s", cursor, b1, want.Bytes())
		}
	}
}

// TestHighlightsETagAndInvalidation pins the highlights half of the
// contract: ETags vary by k, 304 while the revision holds, and both
// SetRedDots and refine completion (SetRefined) invalidate.
func TestHighlightsETagAndInvalidation(t *testing.T) {
	init, target := trainedInitializer(t)
	store := NewStore()
	svc := &Service{Store: store, Engine: testEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	dots := []core.RedDot{{Time: 10, Score: 0.9}, {Time: 20, Score: 0.8}, {Time: 30, Score: 0.7}}
	if err := store.PutVideo(VideoRecord{
		ID: "vod", Duration: target.Video.Duration, Chat: target.Chat.Log, RedDots: dots,
	}); err != nil {
		t.Fatal(err)
	}

	url := srv.URL + "/api/highlights?video=vod&k=2"
	status, etag, body := condGet(t, url, "")
	if status != 200 || etag == "" {
		t.Fatalf("GET = %d, ETag %q", status, etag)
	}
	var hr HighlightsResponse
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatal(err)
	}
	if len(hr.Dots) != 2 {
		t.Fatalf("k=2 served %d dots", len(hr.Dots))
	}

	if s, _, b := condGet(t, url, etag); s != http.StatusNotModified || len(b) != 0 {
		t.Fatalf("conditional GET = %d with %d bytes, want bodyless 304", s, len(b))
	}
	// k is part of the resource: a different k must not share validators.
	if _, etag3, _ := condGet(t, srv.URL+"/api/highlights?video=vod&k=3", ""); etag3 == etag {
		t.Error("k=3 shares the k=2 ETag")
	}

	// SetRedDots invalidates.
	if err := store.SetRedDots("vod", []core.RedDot{{Time: 11}, {Time: 21}}); err != nil {
		t.Fatal(err)
	}
	s, etag2, body2 := condGet(t, url, etag)
	if s != 200 || etag2 == etag || bytes.Equal(body2, body) {
		t.Fatalf("after SetRedDots: status %d, etag %q vs %q — stale cache served", s, etag2, etag)
	}

	// Refine completion (SetRefined, what the refine job's onDone runs)
	// invalidates too.
	if err := store.SetRefined("vod", []core.RedDot{{Time: 12}, {Time: 22}}, []core.Interval{{Start: 12, End: 40}}); err != nil {
		t.Fatal(err)
	}
	s, etagR, bodyR := condGet(t, url, etag2)
	if s != 200 || etagR == etag2 || bytes.Equal(bodyR, body2) {
		t.Fatalf("after SetRefined: status %d, etag %q vs %q — stale cache served", s, etagR, etag2)
	}
	var refined HighlightsResponse
	if err := json.Unmarshal(bodyR, &refined); err != nil {
		t.Fatal(err)
	}
	if len(refined.Boundaries) != 1 || refined.Dots[0].Time != 12 {
		t.Fatalf("refined response stale: %+v", refined)
	}
}

// countingBackend counts SetRedDots calls — the observable footprint of a
// cold-start detection landing its result.
type countingBackend struct {
	Backend
	mu         sync.Mutex
	setRedDots int
}

func (c *countingBackend) SetRedDots(id string, dots []core.RedDot) error {
	c.mu.Lock()
	c.setRedDots++
	c.mu.Unlock()
	return c.Backend.SetRedDots(id, dots)
}

func (c *countingBackend) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.setRedDots
}

// TestHighlightsColdStartSingleFlight fires N concurrent first reads at a
// never-detected video and requires the thundering herd to collapse onto
// ONE Initializer.Detect run: exactly one SetRedDots lands, every request
// gets an identical 200.
func TestHighlightsColdStartSingleFlight(t *testing.T) {
	init, target := trainedInitializer(t)
	cb := &countingBackend{Backend: NewMemoryBackend(MemoryConfig{})}
	store := NewStoreWith(cb)
	svc := &Service{Store: store, Engine: testEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if err := store.PutVideo(VideoRecord{
		ID: "cold", Duration: target.Video.Duration, Chat: target.Chat.Log,
	}); err != nil {
		t.Fatal(err)
	}

	const herd = 8
	bodies := make([][]byte, herd)
	statuses := make([]int, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/api/highlights?video=cold&k=3")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()

	for i := 0; i < herd; i++ {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d served a different body:\n%s\n%s", i, bodies[i], bodies[0])
		}
	}
	if got := cb.count(); got != 1 {
		t.Fatalf("cold start ran detection %d times, want exactly 1 (single-flight)", got)
	}
}

// TestRefineResponsePollStability is the regression test for the
// refineResponse aliasing bug: adjusting served dot times to the refined
// boundary starts must never write through to the job's retained dots —
// repeated polls serve byte-identical payloads and the job snapshot keeps
// the original detection times.
func TestRefineResponsePollStability(t *testing.T) {
	job := engine.RefineJob{
		ID:      "refine-1",
		VideoID: "vod",
		Status:  engine.JobDone,
		Dots:    []core.RedDot{{Time: 100, Score: 0.9}, {Time: 200, Score: 0.8}},
		Results: []core.HighlightResult{
			{Dot: core.RedDot{Time: 100}, Boundary: core.Interval{Start: 90, End: 130}},
			{Dot: core.RedDot{Time: 200}, Boundary: core.Interval{Start: 185, End: 240}},
		},
	}

	first := refineResponse(job)
	second := refineResponse(job)
	if first.Dots[0].Time != 90 || first.Dots[1].Time != 185 {
		t.Fatalf("response dots not adjusted to boundary starts: %+v", first.Dots)
	}
	if job.Dots[0].Time != 100 || job.Dots[1].Time != 200 {
		t.Fatalf("refineResponse mutated the retained job dots: %+v", job.Dots)
	}
	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("poll-twice payloads diverge:\n%s\n%s", a, b)
	}
}

// TestRefineStatusPollTwiceHTTP drives the same regression end to end:
// two consecutive GET /api/refine/status polls of a finished job must
// serve byte-identical payloads.
func TestRefineStatusPollTwiceHTTP(t *testing.T) {
	init, target := trainedInitializer(t)
	store := NewStore()
	svc := &Service{Store: store, Engine: testEngine(t, init)}
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	if err := store.PutVideo(VideoRecord{
		ID: "vod", Duration: target.Video.Duration, Chat: target.Chat.Log,
		RedDots: []core.RedDot{{Time: 50, Score: 0.9}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := store.LogEvents("vod", []play.Event{
		{User: "u1", Type: play.EventPlay, Pos: 48}, {User: "u1", Type: play.EventPause, Pos: 70},
		{User: "u2", Type: play.EventPlay, Pos: 46}, {User: "u2", Type: play.EventPause, Pos: 65},
	}); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(srv.URL+"/api/refine?video=vod", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var enq RefineJobResponse
	if err := json.NewDecoder(resp.Body).Decode(&enq); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if _, err := svc.Engine.Refine().Wait(context.Background(), enq.Job); err != nil {
		t.Fatal(err)
	}

	url := srv.URL + "/api/refine/status?job=" + enq.Job
	_, _, poll1 := condGet(t, url, "")
	_, _, poll2 := condGet(t, url, "")
	if !bytes.Equal(poll1, poll2) {
		t.Fatalf("repeated status polls diverge:\n%s\n%s", poll1, poll2)
	}
	var jr RefineJobResponse
	if err := json.Unmarshal(poll1, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.Status != engine.JobDone || len(jr.Dots) != 1 || len(jr.Boundaries) != 1 {
		t.Fatalf("unexpected finished job payload: %s", poll1)
	}
	if jr.Dots[0].Time != jr.Boundaries[0].Start {
		t.Errorf("served dot time %g not adjusted to boundary start %g", jr.Dots[0].Time, jr.Boundaries[0].Start)
	}
}
