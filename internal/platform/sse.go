package platform

// Server-Sent-Events frame encoding for the push-delivery fast lane.
//
// A frame is built once per published dot version and the same bytes are
// written verbatim to every subscriber, so the writer is append-only into
// a caller-owned buffer — no fmt, no intermediate strings, no per-frame
// allocations beyond the buffer growth itself.
//
// The encoding follows the WHATWG EventSource dispatch rules:
//
//   - `event` and `id` are single-line fields. CR, LF, and NUL can either
//     break framing or make a compliant client discard the field, so they
//     are stripped rather than trusted (our own callers never send them;
//     the sanitization is defense in depth pinned by FuzzSSEFrame).
//   - `data` may span lines: every line of the payload is emitted as its
//     own `data:` field. A compliant client reassembles them by joining
//     with a single LF, so payload line breaks round-trip with CRLF/CR
//     normalized to LF — exactly the normalization the SSE stream format
//     itself applies to raw input.
//   - A frame always carries at least one `data:` field, even for an empty
//     payload: an event with an empty data buffer is NOT dispatched by
//     spec-compliant clients, and a silently dropped frame would desync a
//     subscriber's cursor.
//
// The blank line terminating the frame is included, so concatenated frames
// form a valid event stream.

// appendSSEFrame appends one complete SSE frame to dst and returns the
// extended buffer.
func appendSSEFrame(dst []byte, event, id string, data []byte) []byte {
	if event != "" {
		dst = append(dst, "event: "...)
		dst = appendSSELine(dst, event)
		dst = append(dst, '\n')
	}
	if id != "" {
		dst = append(dst, "id: "...)
		dst = appendSSELine(dst, id)
		dst = append(dst, '\n')
	}
	dst = append(dst, "data: "...)
	for i := 0; i < len(data); i++ {
		switch c := data[i]; c {
		case '\n':
			dst = append(dst, "\ndata: "...)
		case '\r':
			if i+1 < len(data) && data[i+1] == '\n' {
				i++
			}
			dst = append(dst, "\ndata: "...)
		default:
			dst = append(dst, c)
		}
	}
	dst = append(dst, '\n', '\n')
	return dst
}

// appendSSELine appends a single-line field value, stripping the bytes
// that would break framing (CR, LF) or poison the field (NUL).
func appendSSELine(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c != '\n' && c != '\r' && c != 0 {
			dst = append(dst, c)
		}
	}
	return dst
}
