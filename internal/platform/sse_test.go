package platform

import (
	"bufio"
	"bytes"
	"strings"
	"testing"
)

// referenceSSEFrame is the naive spec-first framer the optimized writer
// is fuzzed against: strip framing-hostile bytes from the single-line
// fields, normalize payload line endings the way the SSE stream format
// itself would (\r\n and \r become \n), and emit one data: field per
// line.
func referenceSSEFrame(event, id string, data []byte) []byte {
	clean := func(s string) string {
		var b strings.Builder
		for i := 0; i < len(s); i++ {
			if c := s[i]; c != '\n' && c != '\r' && c != 0 {
				b.WriteByte(c)
			}
		}
		return b.String()
	}
	var b strings.Builder
	if event != "" {
		b.WriteString("event: " + clean(event) + "\n")
	}
	if id != "" {
		b.WriteString("id: " + clean(id) + "\n")
	}
	norm := strings.ReplaceAll(string(data), "\r\n", "\n")
	norm = strings.ReplaceAll(norm, "\r", "\n")
	for _, line := range strings.Split(norm, "\n") {
		b.WriteString("data: " + line + "\n")
	}
	b.WriteString("\n")
	return []byte(b.String())
}

// TestSSEFrameKnownAnswers pins exact frames for the shapes the hub
// actually emits.
func TestSSEFrameKnownAnswers(t *testing.T) {
	cases := []struct {
		event, id string
		data      string
		want      string
	}{
		{"dots", "42", `{"cursor":42}`, "event: dots\nid: 42\ndata: {\"cursor\":42}\n\n"},
		{"end", "7", `{"reason":"closed"}`, "event: end\nid: 7\ndata: {\"reason\":\"closed\"}\n\n"},
		{"", "", "", "data: \n\n"},
		{"m", "", "a\nb", "event: m\ndata: a\ndata: b\n\n"},
		{"m", "", "a\r\nb\rc", "event: m\ndata: a\ndata: b\ndata: c\n\n"},
	}
	for _, c := range cases {
		got := appendSSEFrame(nil, c.event, c.id, []byte(c.data))
		if string(got) != c.want {
			t.Errorf("appendSSEFrame(%q, %q, %q) = %q, want %q", c.event, c.id, c.data, got, c.want)
		}
	}
}

// FuzzSSEFrame cross-checks the zero-allocation framer against the
// reference for arbitrary field and payload bytes, then parses the frame
// back through the client-side dispatch rules and asserts the payload
// round-trips (modulo the spec's newline normalization) — so no input
// can smuggle a frame boundary, break a field, or lose payload bytes.
func FuzzSSEFrame(f *testing.F) {
	f.Add("dots", "42", []byte(`{"channel":"c","dots":[],"cursor":42}`))
	f.Add("", "", []byte(""))
	f.Add("end", "7", []byte("line1\nline2"))
	f.Add("e\nvil", "i\rd", []byte("a\r\nb\rc\nd"))
	f.Add("x", "y", []byte{0, '\r', '\n', '\r', 0})
	f.Add("hb", "", []byte("trailing newline\n"))
	f.Fuzz(func(t *testing.T, event, id string, data []byte) {
		got := appendSSEFrame(nil, event, id, data)
		want := referenceSSEFrame(event, id, data)
		if !bytes.Equal(got, want) {
			t.Fatalf("framer diverged from reference:\n got %q\nwant %q", got, want)
		}
		// Exactly one block: the only blank line is the terminator.
		if bytes.Index(got, []byte("\n\n")) != len(got)-2 {
			t.Fatalf("frame is not exactly one SSE block: %q", got)
		}
		// Round-trip through the dispatch rules.
		ev, err := readSSEEvent(bufio.NewReader(bytes.NewReader(got)))
		if err != nil {
			t.Fatalf("parsing %q: %v", got, err)
		}
		cleanRef := func(s string) string {
			return string(appendSSELine(nil, s))
		}
		if ev.event != cleanRef(event) || ev.id != cleanRef(id) {
			t.Fatalf("fields did not round-trip: got (%q, %q), want (%q, %q)",
				ev.event, ev.id, cleanRef(event), cleanRef(id))
		}
		norm := strings.ReplaceAll(string(data), "\r\n", "\n")
		norm = strings.ReplaceAll(norm, "\r", "\n")
		if ev.data != norm {
			t.Fatalf("payload did not round-trip: got %q, want %q", ev.data, norm)
		}
	})
}
