// Package platform implements the deployment substrate of Section VI: the
// storage layer, the web crawler against a (simulated) Twitch API, and the
// back-end web service that powers the browser extension — red dots out,
// interaction logs in.
package platform

import (
	"sync"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/play"
)

// VideoRecord is the stored state of one recorded video.
type VideoRecord struct {
	ID       string
	Duration float64
	// Chat is treated as immutable once stored: chat.Log has no mutating
	// methods, so sharing the pointer is safe.
	Chat *chat.Log
	// RedDots holds the current (possibly refined) highlight positions.
	RedDots []core.RedDot
	// Boundaries holds extractor-refined spans, aligned with RedDots once
	// refinement has run.
	Boundaries []core.Interval
}

// clone deep-copies the record's slices so the returned value shares no
// mutable backing arrays with the store (or with the caller that put it).
func (r VideoRecord) clone() VideoRecord {
	cp := r
	cp.RedDots = append([]core.RedDot(nil), r.RedDots...)
	cp.Boundaries = append([]core.Interval(nil), r.Boundaries...)
	return cp
}

// Store is the database backing the web service: chat logs, red dots,
// logged interaction events, and live-session checkpoints per video. It is
// a thin facade over a pluggable Backend — the sharded in-memory map by
// default, or the durable WAL+snapshot FileBackend for deployments that
// must survive a restart. It also implements the engine's CheckpointStore,
// so live sessions checkpoint through the same storage seam.
type Store struct {
	b Backend
	// deg caches the backend's optional degraded-mode capability so the
	// per-request admission check is a nil test + one atomic load, not a
	// type assertion.
	deg DegradedBackend

	// revMu/revs track a per-video revision counter, bumped after every
	// highlight-affecting mutation that flows through the facade
	// (PutVideo, SetRedDots, SetBoundaries, SetRefined). Revisions key
	// the read-path response cache: a bump simply stops old cache entries
	// from being addressed, so invalidation costs nothing on the read
	// side. Revisions are process-local (they restart at zero with the
	// process, exactly like the in-memory cache they key).
	revMu sync.RWMutex
	revs  map[string]uint64
}

// NewStore returns a store over a fresh unbounded in-memory backend.
func NewStore() *Store {
	return NewStoreWith(NewMemoryBackend(MemoryConfig{}))
}

// NewStoreWith wraps an explicit backend.
func NewStoreWith(b Backend) *Store {
	s := &Store{b: b, revs: make(map[string]uint64)}
	s.deg, _ = b.(DegradedBackend)
	return s
}

// Degraded reports whether the backend has fail-stopped into read-only
// mode (see FileBackend.Degraded); backends without the capability are
// never degraded.
func (s *Store) Degraded() (bool, string) {
	if s.deg == nil {
		return false, ""
	}
	return s.deg.Degraded()
}

// Backend exposes the underlying storage backend.
func (s *Store) Backend() Backend { return s.b }

// Close releases the backend (flushes and fsyncs a durable backend).
func (s *Store) Close() error { return s.b.Close() }

// bumpRev advances a video's revision. Called AFTER the backend mutation
// is applied, so a reader that loads the revision and then the view can
// pair an old revision with newer data (a transient re-encode on the next
// poll) but never a new revision with stale data (which would poison the
// response cache).
func (s *Store) bumpRev(id string) {
	s.revMu.Lock()
	if s.revs == nil {
		s.revs = make(map[string]uint64)
	}
	s.revs[id]++
	s.revMu.Unlock()
}

// Revision returns the video's current revision: a process-local counter
// that changes whenever the video's served highlight state may have
// changed. (id, k, Revision(id)) fully keys a highlights response.
func (s *Store) Revision(id string) uint64 {
	s.revMu.RLock()
	rev := s.revs[id]
	s.revMu.RUnlock()
	return rev
}

// PutVideo inserts or replaces a video record with deep-copy semantics.
func (s *Store) PutVideo(rec VideoRecord) error {
	if err := s.b.PutVideo(rec); err != nil {
		return err
	}
	s.bumpRev(rec.ID)
	return nil
}

// Video returns a deep copy of the record for id, or false when absent.
func (s *Store) Video(id string) (VideoRecord, bool) { return s.b.Video(id) }

// HighlightView returns the read view highlight serving needs — duration,
// dots, boundaries, chat presence — without cloning anything: the slices
// are shared with the store and immutable (every write replaces backing
// arrays wholesale). Callers must treat them as read-only.
func (s *Store) HighlightView(id string) (HighlightView, bool) {
	return s.b.HighlightView(id)
}

// HasVideo reports whether a record exists for id (no deep copy).
func (s *Store) HasVideo(id string) bool { return s.b.HasVideo(id) }

// HasChat reports whether chat for the video has been crawled already.
// A crawled-but-empty log still counts: re-crawling it would not produce
// messages that do not exist.
func (s *Store) HasChat(id string) bool { return s.b.HasChat(id) }

// SetRedDots records the current highlight positions for a video.
func (s *Store) SetRedDots(id string, dots []core.RedDot) error {
	if err := s.b.SetRedDots(id, dots); err != nil {
		return err
	}
	s.bumpRev(id)
	return nil
}

// SetBoundaries records extractor-refined highlight spans for a video.
func (s *Store) SetBoundaries(id string, spans []core.Interval) error {
	if err := s.b.SetBoundaries(id, spans); err != nil {
		return err
	}
	s.bumpRev(id)
	return nil
}

// SetRefined records refined dots and their boundaries in one critical
// section, so a concurrent reader never observes one without the other.
func (s *Store) SetRefined(id string, dots []core.RedDot, spans []core.Interval) error {
	if err := s.b.SetRefined(id, dots, spans); err != nil {
		return err
	}
	s.bumpRev(id)
	return nil
}

// LogEvents appends deep copies of interaction events for a video, subject
// to the backend's retention policy.
func (s *Store) LogEvents(id string, events []play.Event) error {
	return s.b.AppendEvents(id, events)
}

// LogEventsBatch appends a multi-video burst of interaction events as one
// batch mutation: validated as a whole, applied in order, and (on a
// durable backend) acknowledged with a single durability wait for the
// entire burst.
func (s *Store) LogEventsBatch(batch []EventBatch) error {
	return s.b.AppendEventsBatch(batch)
}

// Events returns a copy of all retained events for a video.
func (s *Store) Events(id string) []play.Event {
	evs, _ := s.b.ScanEvents(id, 0, 0)
	return evs
}

// EventsPage returns one page of a video's retained events (offset into
// the retained log, 0 = oldest) plus the total retained count — the
// paginated form GET readers should use instead of Events.
func (s *Store) EventsPage(id string, offset, limit int) ([]play.Event, int) {
	return s.b.ScanEvents(id, offset, limit)
}

// Plays sessionizes all logged events for a video into play records.
func (s *Store) Plays(id string) []play.Play {
	return play.Sessionize(s.Events(id))
}

// VideoIDs returns all stored video IDs, sorted.
func (s *Store) VideoIDs() []string { return s.b.VideoIDs() }

// PutCheckpoint stores a live session's serialized detector state; with a
// durable backend it survives a crash and feeds engine resume. Store
// thereby satisfies the engine's CheckpointStore interface.
func (s *Store) PutCheckpoint(channel string, state []byte) error {
	return s.b.PutCheckpoint(channel, state)
}

// Checkpoints returns a copy of all stored session checkpoints.
func (s *Store) Checkpoints() map[string][]byte { return s.b.Checkpoints() }

// DeleteCheckpoint removes a finished broadcast's checkpoint.
func (s *Store) DeleteCheckpoint(channel string) error {
	return s.b.DeleteCheckpoint(channel)
}
