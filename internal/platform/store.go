// Package platform implements the deployment substrate of Section VI: the
// storage layer, the web crawler against a (simulated) Twitch API, and the
// back-end web service that powers the browser extension — red dots out,
// interaction logs in.
package platform

import (
	"fmt"
	"sync"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/play"
)

// VideoRecord is the stored state of one recorded video.
type VideoRecord struct {
	ID       string
	Duration float64
	Chat     *chat.Log
	// RedDots holds the current (possibly refined) highlight positions.
	RedDots []core.RedDot
	// Boundaries holds extractor-refined spans, aligned with RedDots once
	// refinement has run.
	Boundaries []core.Interval
}

// Store is the thread-safe in-memory database backing the web service:
// chat logs, red dots, and logged interaction events per video. A real
// deployment would swap this for a persistent database behind the same
// methods.
type Store struct {
	mu     sync.RWMutex
	videos map[string]*VideoRecord
	events map[string][]play.Event
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		videos: make(map[string]*VideoRecord),
		events: make(map[string][]play.Event),
	}
}

// PutVideo inserts or replaces a video record. The record is stored by
// value semantics: callers must not mutate the chat log afterwards.
func (s *Store) PutVideo(rec VideoRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("platform: video record needs an ID")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := rec
	s.videos[rec.ID] = &cp
	return nil
}

// Video returns a copy of the record for id, or false when absent.
func (s *Store) Video(id string) (VideoRecord, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.videos[id]
	if !ok {
		return VideoRecord{}, false
	}
	return *rec, true
}

// HasChat reports whether chat for the video has been crawled already.
// A crawled-but-empty log still counts: re-crawling it would not produce
// messages that do not exist.
func (s *Store) HasChat(id string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.videos[id]
	return ok && rec.Chat != nil
}

// SetRedDots records the current highlight positions for a video.
func (s *Store) SetRedDots(id string, dots []core.RedDot) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.videos[id]
	if !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	rec.RedDots = append([]core.RedDot(nil), dots...)
	return nil
}

// SetBoundaries records extractor-refined highlight spans for a video.
func (s *Store) SetBoundaries(id string, spans []core.Interval) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.videos[id]
	if !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	rec.Boundaries = append([]core.Interval(nil), spans...)
	return nil
}

// LogEvents appends interaction events for a video.
func (s *Store) LogEvents(id string, events []play.Event) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.videos[id]; !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	s.events[id] = append(s.events[id], events...)
	return nil
}

// Events returns a copy of all logged events for a video.
func (s *Store) Events(id string) []play.Event {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]play.Event(nil), s.events[id]...)
}

// Plays sessionizes all logged events for a video into play records.
func (s *Store) Plays(id string) []play.Play {
	return play.Sessionize(s.Events(id))
}

// VideoIDs returns all stored video IDs, sorted.
func (s *Store) VideoIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.videoIDsLocked()
}
