// Package platform implements the deployment substrate of Section VI: the
// storage layer, the web crawler against a (simulated) Twitch API, and the
// back-end web service that powers the browser extension — red dots out,
// interaction logs in.
package platform

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/play"
)

// VideoRecord is the stored state of one recorded video.
type VideoRecord struct {
	ID       string
	Duration float64
	// Chat is treated as immutable once stored: chat.Log has no mutating
	// methods, so sharing the pointer is safe.
	Chat *chat.Log
	// RedDots holds the current (possibly refined) highlight positions.
	RedDots []core.RedDot
	// Boundaries holds extractor-refined spans, aligned with RedDots once
	// refinement has run.
	Boundaries []core.Interval
}

// clone deep-copies the record's slices so the returned value shares no
// mutable backing arrays with the store (or with the caller that put it).
func (r VideoRecord) clone() VideoRecord {
	cp := r
	cp.RedDots = append([]core.RedDot(nil), r.RedDots...)
	cp.Boundaries = append([]core.Interval(nil), r.Boundaries...)
	return cp
}

// storeShards is the lock-shard count. Power of two, comfortably above
// typical core counts, so concurrent request handlers touching different
// videos almost never contend on the same mutex.
const storeShards = 32

// storeShard is one lock domain: a slice of the video and event maps.
type storeShard struct {
	mu     sync.RWMutex
	videos map[string]*VideoRecord
	events map[string][]play.Event
}

// Store is the thread-safe in-memory database backing the web service:
// chat logs, red dots, and logged interaction events per video. Keys are
// sharded across independently locked maps, so the store scales with
// concurrent handlers instead of serializing them on one mutex. All reads
// return deep copies and all writes store deep copies — value semantics
// hold even under concurrent mutation by callers. A real deployment would
// swap this for a persistent database behind the same methods.
type Store struct {
	shards [storeShards]storeShard
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].videos = make(map[string]*VideoRecord)
		s.shards[i].events = make(map[string][]play.Event)
	}
	return s
}

func (s *Store) shard(id string) *storeShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &s.shards[h.Sum32()%storeShards]
}

// PutVideo inserts or replaces a video record. The record is stored with
// deep-copy semantics: the store keeps its own backing arrays for RedDots
// and Boundaries, so the caller may keep mutating its slices freely.
func (s *Store) PutVideo(rec VideoRecord) error {
	if rec.ID == "" {
		return fmt.Errorf("platform: video record needs an ID")
	}
	sh := s.shard(rec.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	cp := rec.clone()
	sh.videos[rec.ID] = &cp
	return nil
}

// Video returns a deep copy of the record for id, or false when absent.
func (s *Store) Video(id string) (VideoRecord, bool) {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.videos[id]
	if !ok {
		return VideoRecord{}, false
	}
	return rec.clone(), true
}

// HasChat reports whether chat for the video has been crawled already.
// A crawled-but-empty log still counts: re-crawling it would not produce
// messages that do not exist.
func (s *Store) HasChat(id string) bool {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	rec, ok := sh.videos[id]
	return ok && rec.Chat != nil
}

// SetRedDots records the current highlight positions for a video.
func (s *Store) SetRedDots(id string, dots []core.RedDot) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.videos[id]
	if !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	rec.RedDots = append([]core.RedDot(nil), dots...)
	return nil
}

// SetBoundaries records extractor-refined highlight spans for a video.
func (s *Store) SetBoundaries(id string, spans []core.Interval) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.videos[id]
	if !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	rec.Boundaries = append([]core.Interval(nil), spans...)
	return nil
}

// SetRefined records refined dots and their boundaries in one critical
// section, so a concurrent reader never observes one without the other.
func (s *Store) SetRefined(id string, dots []core.RedDot, spans []core.Interval) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	rec, ok := sh.videos[id]
	if !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	rec.RedDots = append([]core.RedDot(nil), dots...)
	rec.Boundaries = append([]core.Interval(nil), spans...)
	return nil
}

// LogEvents appends deep copies of interaction events for a video.
func (s *Store) LogEvents(id string, events []play.Event) error {
	sh := s.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.videos[id]; !ok {
		return fmt.Errorf("platform: unknown video %q", id)
	}
	sh.events[id] = append(sh.events[id], events...)
	return nil
}

// Events returns a copy of all logged events for a video.
func (s *Store) Events(id string) []play.Event {
	sh := s.shard(id)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return append([]play.Event(nil), sh.events[id]...)
}

// Plays sessionizes all logged events for a video into play records.
func (s *Store) Plays(id string) []play.Play {
	return play.Sessionize(s.Events(id))
}

// VideoIDs returns all stored video IDs, sorted.
func (s *Store) VideoIDs() []string {
	var ids []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for id := range sh.videos {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(ids)
	return ids
}
