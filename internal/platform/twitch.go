package platform

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"lightor/internal/chat"
)

// TwitchVideo is the metadata the simulated platform API exposes per
// recorded video.
type TwitchVideo struct {
	ID       string  `json:"id"`
	Channel  string  `json:"channel"`
	Duration float64 `json:"duration"`
	Viewers  int     `json:"viewers"`
}

// SimTwitch is an in-process stand-in for the live-streaming platform's
// public API (the paper crawls Twitch's). It serves channel listings and
// per-video chat logs over HTTP:
//
//	GET /channels                 → ["chan1", ...]
//	GET /videos?channel=chan1     → [TwitchVideo, ...]
//	GET /chat?video=id            → chat log as JSON lines
type SimTwitch struct {
	mu     sync.RWMutex
	byChan map[string][]TwitchVideo
	chats  map[string]*chat.Log
}

// NewSimTwitch returns an empty simulated platform.
func NewSimTwitch() *SimTwitch {
	return &SimTwitch{
		byChan: make(map[string][]TwitchVideo),
		chats:  make(map[string]*chat.Log),
	}
}

// AddVideo registers a recorded video and its chat log.
func (s *SimTwitch) AddVideo(v TwitchVideo, log *chat.Log) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byChan[v.Channel] = append(s.byChan[v.Channel], v)
	s.chats[v.ID] = log
}

// Handler returns the HTTP handler implementing the API.
func (s *SimTwitch) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /channels", s.handleChannels)
	mux.HandleFunc("GET /videos", s.handleVideos)
	mux.HandleFunc("GET /video", s.handleVideo)
	mux.HandleFunc("GET /chat", s.handleChat)
	return mux
}

func (s *SimTwitch) handleVideo(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, videos := range s.byChan {
		for _, v := range videos {
			if v.ID == id {
				writeJSON(w, v)
				return
			}
		}
	}
	http.Error(w, fmt.Sprintf("unknown video %q", id), http.StatusNotFound)
}

func (s *SimTwitch) handleChannels(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	channels := make([]string, 0, len(s.byChan))
	for c := range s.byChan {
		channels = append(channels, c)
	}
	s.mu.RUnlock()
	sort.Strings(channels)
	writeJSON(w, channels)
}

func (s *SimTwitch) handleVideos(w http.ResponseWriter, r *http.Request) {
	channel := r.URL.Query().Get("channel")
	s.mu.RLock()
	videos, ok := s.byChan[channel]
	s.mu.RUnlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown channel %q", channel), http.StatusNotFound)
		return
	}
	writeJSON(w, videos)
}

func (s *SimTwitch) handleChat(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("video")
	s.mu.RLock()
	log, ok := s.chats[id]
	s.mu.RUnlock()
	if !ok {
		http.Error(w, fmt.Sprintf("unknown video %q", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if err := chat.WriteJSONL(w, log); err != nil {
		// Headers are already out; nothing more to do than drop the
		// connection, which WriteJSONL's error already implies.
		return
	}
}

