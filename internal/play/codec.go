package play

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteEventsJSONL writes interaction events as JSON lines, the format the
// browser extension logs and the platform service ingests.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range events {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("play: encoding event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadEventsJSONL parses a JSON-lines event log. Blank lines are skipped;
// malformed lines are errors.
func ReadEventsJSONL(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("play: line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("play: reading events: %w", err)
	}
	return events, nil
}

// WritePlaysJSONL writes sessionized play records as JSON lines.
func WritePlaysJSONL(w io.Writer, plays []Play) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, p := range plays {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("play: encoding play %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadPlaysJSONL parses a JSON-lines play log, validating each record.
func ReadPlaysJSONL(r io.Reader) ([]Play, error) {
	var plays []Play
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var p Play
		if err := json.Unmarshal(raw, &p); err != nil {
			return nil, fmt.Errorf("play: line %d: %w", line, err)
		}
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("play: line %d: %w", line, err)
		}
		plays = append(plays, p)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("play: reading plays: %w", err)
	}
	return plays, nil
}
