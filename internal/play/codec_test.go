package play

import (
	"bytes"
	"strings"
	"testing"
)

func TestEventsJSONLRoundTrip(t *testing.T) {
	in := []Event{
		{User: "alice", Seq: 0, Type: EventPlay, Pos: 100},
		{User: "alice", Seq: 1, Type: EventSeek, Pos: 120},
		{User: "bob", Seq: 0, Type: EventPlay, Pos: 50.5},
		{User: "bob", Seq: 1, Type: EventStop, Pos: 99.25},
	}
	var buf bytes.Buffer
	if err := WriteEventsJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("len = %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Errorf("event %d = %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestReadEventsJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadEventsJSONL(strings.NewReader("nope\n")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestReadEventsJSONLSkipsBlankLines(t *testing.T) {
	in := "{\"user\":\"u\",\"seq\":0,\"type\":0,\"pos\":1}\n\n"
	out, err := ReadEventsJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Errorf("len = %d, want 1", len(out))
	}
}

func TestPlaysJSONLRoundTrip(t *testing.T) {
	in := []Play{
		{User: "a", Start: 1, End: 2},
		{User: "b", Start: 3.5, End: 10},
	}
	var buf bytes.Buffer
	if err := WritePlaysJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadPlaysJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round trip = %v", out)
	}
}

func TestReadPlaysJSONLValidates(t *testing.T) {
	// Inverted span must be rejected at parse time.
	in := `{"user":"a","start":10,"end":5}` + "\n"
	if _, err := ReadPlaysJSONL(strings.NewReader(in)); err == nil {
		t.Error("inverted play accepted")
	}
}
