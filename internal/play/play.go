// Package play models viewer interaction data: raw player events (play,
// pause, seek) and the play records the Highlight Extractor consumes.
// A play record ⟨user, play(s, e)⟩ means the user played the video from
// position s to position e without interruption (Section V-A of the paper).
package play

import (
	"fmt"
	"sort"
)

// Play is one uninterrupted viewing span by one user.
type Play struct {
	User  string  `json:"user"`
	Start float64 `json:"start"` // video position, seconds
	End   float64 `json:"end"`
}

// Duration returns the length of the play in seconds.
func (p Play) Duration() float64 { return p.End - p.Start }

// Covers reports whether the play covers video position x.
func (p Play) Covers(x float64) bool { return p.Start <= x && x <= p.End }

// Overlaps reports whether two plays share any span. Touching endpoints
// count as overlap, which is what the extractor's outlier graph wants: two
// viewers whose plays abut are watching the same thing.
func (p Play) Overlaps(o Play) bool {
	return p.Start <= o.End && o.Start <= p.End
}

// Validate returns an error if the play is inverted or negative.
func (p Play) Validate() error {
	if p.End < p.Start {
		return fmt.Errorf("play: inverted span [%g, %g]", p.Start, p.End)
	}
	if p.Start < 0 {
		return fmt.Errorf("play: negative start %g", p.Start)
	}
	return nil
}

// EventType enumerates raw player interactions.
type EventType int

const (
	// EventPlay starts playback at Pos.
	EventPlay EventType = iota
	// EventPause stops playback at Pos.
	EventPause
	// EventSeek jumps from the current position to Pos. If playback was
	// running, the span up to the seek origin becomes a play record.
	EventSeek
	// EventStop ends the session at Pos (tab closed, video ended).
	EventStop
)

// String implements fmt.Stringer for diagnostics.
func (t EventType) String() string {
	switch t {
	case EventPlay:
		return "play"
	case EventPause:
		return "pause"
	case EventSeek:
		return "seek"
	case EventStop:
		return "stop"
	default:
		return fmt.Sprintf("EventType(%d)", int(t))
	}
}

// Event is one raw player interaction from one user's session. Seq orders
// events within a session (wall-clock arrival order).
type Event struct {
	User string    `json:"user"`
	Seq  int       `json:"seq"`
	Type EventType `json:"type"`
	Pos  float64   `json:"pos"` // video position the event refers to
}

// Sessionize converts raw events into play records. Events are grouped per
// user and ordered by Seq; a play span opens at EventPlay and closes at the
// next Pause/Seek/Stop. Dangling opens (no terminating event) are dropped —
// we cannot know where the viewer stopped watching. Zero-length spans are
// dropped too; they carry no highlight evidence.
func Sessionize(events []Event) []Play {
	byUser := map[string][]Event{}
	var users []string
	for _, e := range events {
		if _, ok := byUser[e.User]; !ok {
			users = append(users, e.User)
		}
		byUser[e.User] = append(byUser[e.User], e)
	}
	sort.Strings(users)

	var plays []Play
	for _, u := range users {
		evs := byUser[u]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
		playing := false
		var start float64
		for _, e := range evs {
			switch e.Type {
			case EventPlay:
				// A second Play while playing is a no-op position update in
				// real players; treat it as continuing the current span.
				if !playing {
					playing = true
					start = e.Pos
				}
			case EventPause, EventSeek, EventStop:
				if playing && e.Pos > start {
					plays = append(plays, Play{User: u, Start: start, End: e.Pos})
				}
				playing = false
			}
		}
	}
	return plays
}

// Near returns the plays that lie within [dot−delta, dot+delta], the
// association window around a red dot (Δ = 60 s by default in the paper).
// A play qualifies if any part of it intersects the window.
func Near(plays []Play, dot, delta float64) []Play {
	lo, hi := dot-delta, dot+delta
	var out []Play
	for _, p := range plays {
		if p.End >= lo && p.Start <= hi {
			out = append(out, p)
		}
	}
	return out
}

// Starts extracts the start positions of plays.
func Starts(plays []Play) []float64 {
	out := make([]float64, len(plays))
	for i, p := range plays {
		out[i] = p.Start
	}
	return out
}

// Ends extracts the end positions of plays.
func Ends(plays []Play) []float64 {
	out := make([]float64, len(plays))
	for i, p := range plays {
		out[i] = p.End
	}
	return out
}
