package play

import (
	"testing"
	"testing/quick"
)

func TestPlayBasics(t *testing.T) {
	p := Play{User: "u", Start: 10, End: 30}
	if p.Duration() != 20 {
		t.Errorf("Duration = %g, want 20", p.Duration())
	}
	if !p.Covers(10) || !p.Covers(30) || p.Covers(31) {
		t.Error("Covers boundaries wrong")
	}
	if err := p.Validate(); err != nil {
		t.Errorf("valid play rejected: %v", err)
	}
	if err := (Play{Start: 5, End: 1}).Validate(); err == nil {
		t.Error("inverted play accepted")
	}
	if err := (Play{Start: -1, End: 1}).Validate(); err == nil {
		t.Error("negative start accepted")
	}
}

func TestPlayOverlaps(t *testing.T) {
	a := Play{Start: 0, End: 10}
	cases := []struct {
		b    Play
		want bool
	}{
		{Play{Start: 5, End: 15}, true},
		{Play{Start: 10, End: 20}, true}, // touching counts
		{Play{Start: 11, End: 20}, false},
		{Play{Start: -5, End: -1}, false},
	}
	for _, c := range cases {
		if got := a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Overlaps(a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v", c.b)
		}
	}
}

func TestSessionizeBasic(t *testing.T) {
	events := []Event{
		{User: "alice", Seq: 0, Type: EventPlay, Pos: 100},
		{User: "alice", Seq: 1, Type: EventPause, Pos: 120},
		{User: "alice", Seq: 2, Type: EventPlay, Pos: 200},
		{User: "alice", Seq: 3, Type: EventStop, Pos: 215},
	}
	plays := Sessionize(events)
	if len(plays) != 2 {
		t.Fatalf("plays = %v, want 2 records", plays)
	}
	if plays[0] != (Play{User: "alice", Start: 100, End: 120}) {
		t.Errorf("first play = %+v", plays[0])
	}
	if plays[1] != (Play{User: "alice", Start: 200, End: 215}) {
		t.Errorf("second play = %+v", plays[1])
	}
}

func TestSessionizeSeekClosesSpan(t *testing.T) {
	events := []Event{
		{User: "u", Seq: 0, Type: EventPlay, Pos: 50},
		{User: "u", Seq: 1, Type: EventSeek, Pos: 70}, // watched 50..70, then jumped
		{User: "u", Seq: 2, Type: EventPlay, Pos: 90},
		{User: "u", Seq: 3, Type: EventStop, Pos: 95},
	}
	plays := Sessionize(events)
	if len(plays) != 2 || plays[0].End != 70 || plays[1].Start != 90 {
		t.Errorf("plays = %v", plays)
	}
}

func TestSessionizeDanglingOpenDropped(t *testing.T) {
	events := []Event{{User: "u", Seq: 0, Type: EventPlay, Pos: 10}}
	if plays := Sessionize(events); len(plays) != 0 {
		t.Errorf("dangling open produced %v", plays)
	}
}

func TestSessionizeZeroLengthDropped(t *testing.T) {
	events := []Event{
		{User: "u", Seq: 0, Type: EventPlay, Pos: 10},
		{User: "u", Seq: 1, Type: EventPause, Pos: 10},
	}
	if plays := Sessionize(events); len(plays) != 0 {
		t.Errorf("zero-length span produced %v", plays)
	}
}

func TestSessionizeDoublePlayContinues(t *testing.T) {
	events := []Event{
		{User: "u", Seq: 0, Type: EventPlay, Pos: 10},
		{User: "u", Seq: 1, Type: EventPlay, Pos: 15}, // redundant
		{User: "u", Seq: 2, Type: EventPause, Pos: 20},
	}
	plays := Sessionize(events)
	if len(plays) != 1 || plays[0].Start != 10 || plays[0].End != 20 {
		t.Errorf("plays = %v, want single [10,20]", plays)
	}
}

func TestSessionizeMultiUserDeterministicOrder(t *testing.T) {
	events := []Event{
		{User: "zoe", Seq: 0, Type: EventPlay, Pos: 1},
		{User: "zoe", Seq: 1, Type: EventStop, Pos: 2},
		{User: "amy", Seq: 0, Type: EventPlay, Pos: 3},
		{User: "amy", Seq: 1, Type: EventStop, Pos: 4},
	}
	plays := Sessionize(events)
	if len(plays) != 2 || plays[0].User != "amy" || plays[1].User != "zoe" {
		t.Errorf("user order not deterministic: %v", plays)
	}
}

func TestNear(t *testing.T) {
	plays := []Play{
		{Start: 100, End: 120}, // inside
		{Start: 30, End: 35},   // far before
		{Start: 139, End: 150}, // clips the window edge
		{Start: 300, End: 310}, // far after
	}
	got := Near(plays, 100, 40) // window [60, 140]
	if len(got) != 2 {
		t.Fatalf("Near = %v, want 2 plays", got)
	}
	if got[0].Start != 100 || got[1].Start != 139 {
		t.Errorf("Near kept wrong plays: %v", got)
	}
}

func TestStartsEnds(t *testing.T) {
	plays := []Play{{Start: 1, End: 2}, {Start: 3, End: 4}}
	s, e := Starts(plays), Ends(plays)
	if s[0] != 1 || s[1] != 3 || e[0] != 2 || e[1] != 4 {
		t.Errorf("Starts/Ends = %v / %v", s, e)
	}
}

// Property: every play produced by Sessionize has positive duration and
// plays from one user never overlap in production order.
func TestSessionizeInvariants(t *testing.T) {
	f := func(raw []uint8) bool {
		var events []Event
		for i, b := range raw {
			events = append(events, Event{
				User: "u",
				Seq:  i,
				Type: EventType(b % 4),
				Pos:  float64(b),
			})
		}
		for _, p := range Sessionize(events) {
			if p.Duration() <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventTypeString(t *testing.T) {
	if EventPlay.String() != "play" || EventSeek.String() != "seek" {
		t.Error("EventType String wrong")
	}
	if EventType(9).String() == "" {
		t.Error("unknown EventType should still render")
	}
}
