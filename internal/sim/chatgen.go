package sim

import (
	"fmt"
	"math/rand"
	"strings"

	"lightor/internal/chat"
	"lightor/internal/stats"
)

// Burst records the ground truth of one highlight's chat reaction: which
// highlight it belongs to and when the message burst peaks. Window labeling
// and the Figure 2 analysis both key on burst peaks.
type Burst struct {
	Highlight Interval
	Peak      float64 // video time at which the reaction burst is densest
	Messages  int
}

// ChatResult is a generated chat log plus its ground truth.
type ChatResult struct {
	Log    *chat.Log
	Bursts []Burst
}

// GenerateChat simulates the chat log of a video under a profile. The log
// mixes four message populations:
//
//  1. ambient background chatter (Poisson arrivals, medium-length messages);
//  2. highlight reaction bursts: dense clusters of short, repetitive hype
//     messages peaking ReactionDelayMean seconds AFTER the highlight starts
//     — the delay the Adjustment stage must learn;
//  3. off-topic discussion bursts: elevated rate, long dissimilar messages
//     (fools a pure message-count detector, caught by length+similarity);
//  4. smalltalk showers: bursts of short but mutually unrelated messages
//     (fools count+length, caught only by similarity);
//  5. advertisement bot bursts: very dense, long, near-identical spam
//     (fools count and similarity, caught by message length).
func GenerateChat(rng *rand.Rand, v Video, p Profile) ChatResult {
	var messages []chat.Message

	// 1. Background chatter.
	t := stats.Exponential(rng, p.BackgroundRate)
	for t < v.Duration {
		messages = append(messages, chat.Message{
			Time: t,
			User: randomUser(rng),
			Text: casualText(rng, p, 4, 12),
		})
		t += stats.Exponential(rng, p.BackgroundRate)
	}

	// 2. Highlight reaction bursts.
	bursts := make([]Burst, 0, len(v.Highlights))
	for _, h := range v.Highlights {
		delay := stats.Normal(rng, p.ReactionDelayMean, p.ReactionDelayStd)
		if delay < 3 {
			delay = 3
		}
		peak := h.Start + delay
		if peak > v.Duration-1 {
			peak = v.Duration - 1
		}
		n := stats.IntBetween(rng, p.BurstMin, p.BurstMax)
		// Each burst converges on a couple of topic words, which is what
		// drives the message-similarity feature up.
		topic := burstTopic(rng, p)
		for i := 0; i < n; i++ {
			mt := stats.Normal(rng, peak, p.BurstSpread)
			// Nobody comments before the highlight begins.
			mt = stats.Clamp(mt, h.Start+0.5, v.Duration-0.1)
			messages = append(messages, chat.Message{
				Time: mt,
				User: randomUser(rng),
				Text: excitedText(rng, topic),
			})
		}
		bursts = append(bursts, Burst{Highlight: h, Peak: peak, Messages: n})
	}

	// 3. Off-topic discussion bursts.
	hours := v.Duration / 3600
	nDisc := stats.Poisson(rng, p.DiscussionPerHour*hours)
	for d := 0; d < nDisc; d++ {
		center := stats.Uniform(rng, 60, v.Duration-60)
		n := stats.IntBetween(rng, 15, 45)
		for i := 0; i < n; i++ {
			mt := stats.Clamp(stats.Normal(rng, center, 12), 0, v.Duration-0.1)
			messages = append(messages, chat.Message{
				Time: mt,
				User: randomUser(rng),
				Text: casualText(rng, p, 8, 20),
			})
		}
	}

	// 4. Smalltalk showers: floods of short but mutually UNRELATED messages
	// (a raid of greetings, stream-wide reactions to a donation, etc.).
	// These defeat the number+length feature pair — only similarity tells
	// them from a genuine hype burst, which is why Figure 6a's full model
	// pulls ahead at larger k.
	nShowers := stats.Poisson(rng, 2*hours)
	for s := 0; s < nShowers; s++ {
		center := stats.Uniform(rng, 60, v.Duration-60)
		n := stats.IntBetween(rng, 20, 45)
		for i := 0; i < n; i++ {
			mt := stats.Clamp(stats.Normal(rng, center, 8), 0, v.Duration-0.1)
			messages = append(messages, chat.Message{
				Time: mt,
				User: randomUser(rng),
				Text: casualText(rng, p, 1, 3),
			})
		}
	}

	// 5. Advertisement bot bursts.
	nBots := stats.Poisson(rng, p.BotPerHour*hours)
	for b := 0; b < nBots; b++ {
		center := stats.Uniform(rng, 60, v.Duration-60)
		ad := stats.Choice(rng, p.BotAds)
		bot := fmt.Sprintf("bot%04d", rng.Intn(10000))
		n := stats.IntBetween(rng, 25, 60)
		for i := 0; i < n; i++ {
			mt := stats.Clamp(stats.Normal(rng, center, 4), 0, v.Duration-0.1)
			messages = append(messages, chat.Message{Time: mt, User: bot, Text: ad})
		}
	}

	return ChatResult{Log: chat.NewLog(messages), Bursts: bursts}
}

// LabelWindows returns a 0/1 label per window: 1 when the window contains
// the peak of some highlight's reaction burst, i.e. the window is "talking
// about a highlight" in the paper's labeling scheme.
func LabelWindows(windows []chat.Window, bursts []Burst) []int {
	labels := make([]int, len(windows))
	for i, w := range windows {
		for _, b := range bursts {
			if b.Peak >= w.Start && b.Peak < w.End {
				labels[i] = 1
				break
			}
		}
	}
	return labels
}

func randomUser(rng *rand.Rand) string {
	return fmt.Sprintf("user%05d", rng.Intn(100000))
}

// burstTopic picks the 2–4 hype words one burst converges on.
func burstTopic(rng *rand.Rand, p Profile) []string {
	n := stats.IntBetween(rng, 2, 4)
	topic := make([]string, n)
	for i := range topic {
		topic[i] = stats.Choice(rng, p.ExcitedVocab)
	}
	return topic
}

// excitedText builds a short (1–3 word) hype message from a burst topic.
func excitedText(rng *rand.Rand, topic []string) string {
	n := stats.IntBetween(rng, 1, 3)
	words := make([]string, n)
	for i := range words {
		words[i] = stats.Choice(rng, topic)
	}
	return strings.Join(words, " ")
}

// casualText builds a message of minWords..maxWords from the casual
// vocabulary; long and mutually dissimilar.
func casualText(rng *rand.Rand, p Profile, minWords, maxWords int) string {
	n := stats.IntBetween(rng, minWords, maxWords)
	words := make([]string, n)
	for i := range words {
		words[i] = stats.Choice(rng, p.CasualVocab)
	}
	return strings.Join(words, " ")
}
