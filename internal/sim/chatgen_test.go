package sim

import (
	"math"
	"testing"

	"lightor/internal/chat"
	"lightor/internal/stats"
	"lightor/internal/text"
)

func testVideoAndChat(seed int64) (Video, ChatResult, Profile) {
	rng := stats.NewRand(seed)
	p := Dota2Profile()
	v := GenerateVideo(rng, p, "t")
	return v, GenerateChat(rng, v, p), p
}

func TestGenerateChatBasics(t *testing.T) {
	v, cr, _ := testVideoAndChat(1)
	if cr.Log.Len() == 0 {
		t.Fatal("no messages generated")
	}
	if err := cr.Log.Validate(v.Duration); err != nil {
		t.Fatalf("invalid chat log: %v", err)
	}
	if len(cr.Bursts) != len(v.Highlights) {
		t.Errorf("bursts = %d, highlights = %d", len(cr.Bursts), len(v.Highlights))
	}
}

func TestGenerateChatRateMeetsApplicabilityBar(t *testing.T) {
	v, cr, _ := testVideoAndChat(2)
	if rate := cr.Log.RatePerHour(v.Duration); rate < 500 {
		t.Errorf("chat rate %g/h below the 500/h applicability bar", rate)
	}
}

func TestBurstPeakFollowsHighlightStart(t *testing.T) {
	_, cr, p := testVideoAndChat(3)
	for _, b := range cr.Bursts {
		delay := b.Peak - b.Highlight.Start
		if delay < 3 || delay > p.ReactionDelayMean+5*p.ReactionDelayStd {
			t.Errorf("burst delay %g implausible (mean %g)", delay, p.ReactionDelayMean)
		}
	}
}

func TestNoBurstMessagesBeforeHighlightStart(t *testing.T) {
	// The defining property of live chat: reactions come after the event.
	// Verify via message density: the 10 s before each highlight start must
	// carry far fewer messages than the 10 s after the burst peak.
	v, cr, _ := testVideoAndChat(4)
	for _, b := range cr.Bursts {
		before := cr.Log.CountBetween(b.Highlight.Start-10, b.Highlight.Start)
		atPeak := cr.Log.CountBetween(b.Peak-5, b.Peak+5)
		if atPeak <= before {
			t.Errorf("burst at %g not denser than pre-highlight chat (%d vs %d)",
				b.Peak, atPeak, before)
		}
	}
	_ = v
}

func TestHighlightWindowsAreShortAndSimilar(t *testing.T) {
	v, cr, _ := testVideoAndChat(5)
	ws := chat.SlidingWindows(cr.Log, v.Duration, 25, 25)
	labels := LabelWindows(ws, cr.Bursts)

	var hiLen, loLen, hiSim, loSim []float64
	for i, w := range ws {
		if w.Count() < 2 {
			continue
		}
		var totalWords float64
		for _, m := range w.Messages {
			totalWords += float64(text.WordCount(m.Text))
		}
		avgLen := totalWords / float64(w.Count())
		sim := text.MessageSimilarity(w.Texts())
		if labels[i] == 1 {
			hiLen = append(hiLen, avgLen)
			hiSim = append(hiSim, sim)
		} else {
			loLen = append(loLen, avgLen)
			loSim = append(loSim, sim)
		}
	}
	if len(hiLen) == 0 || len(loLen) == 0 {
		t.Fatal("need both labeled classes")
	}
	if stats.Mean(hiLen) >= stats.Mean(loLen) {
		t.Errorf("highlight windows should have shorter messages: %g vs %g",
			stats.Mean(hiLen), stats.Mean(loLen))
	}
	if stats.Mean(hiSim) <= stats.Mean(loSim) {
		t.Errorf("highlight windows should be more similar: %g vs %g",
			stats.Mean(hiSim), stats.Mean(loSim))
	}
}

func TestLabelWindows(t *testing.T) {
	ws := []chat.Window{
		{Start: 0, End: 25},
		{Start: 25, End: 50},
		{Start: 50, End: 75},
	}
	bursts := []Burst{{Peak: 30}}
	labels := LabelWindows(ws, bursts)
	if labels[0] != 0 || labels[1] != 1 || labels[2] != 0 {
		t.Errorf("labels = %v, want [0 1 0]", labels)
	}
}

func TestGenerateChatDeterministic(t *testing.T) {
	_, a, _ := testVideoAndChat(9)
	_, b, _ := testVideoAndChat(9)
	if a.Log.Len() != b.Log.Len() {
		t.Fatal("same seed produced different chat logs")
	}
	for i := 0; i < a.Log.Len(); i++ {
		if a.Log.At(i) != b.Log.At(i) {
			t.Fatal("same seed produced different messages")
		}
	}
}

func TestGenerateDatasetNesting(t *testing.T) {
	// The first k videos of a size-n dataset must equal the size-k dataset
	// generated from the same seed: training-size sweeps depend on it.
	small := GenerateDataset(stats.NewRand(5), Dota2Profile(), 3)
	large := GenerateDataset(stats.NewRand(5), Dota2Profile(), 6)
	for i := range small {
		if small[i].Video.ID != large[i].Video.ID ||
			small[i].Video.Duration != large[i].Video.Duration ||
			small[i].Chat.Log.Len() != large[i].Chat.Log.Len() {
			t.Fatalf("dataset prefix differs at %d", i)
		}
	}
}

func TestFrameFeatures(t *testing.T) {
	rng := stats.NewRand(6)
	v := Video{Game: "lol", Duration: 600, Highlights: []Interval{{Start: 100, End: 200}}}
	frames := FrameFeatures(rng, v, 8)
	if len(frames) != 600 {
		t.Fatalf("frames = %d, want 600", len(frames))
	}
	// Effects lag the start by 3 s and linger 5 s past the end; compare a
	// comfortably-inside band with a comfortably-outside band.
	var inMean, outMean float64
	var inN, outN int
	for ts, f := range frames {
		switch {
		case ts >= 110 && ts <= 190:
			inMean += f[0]
			inN++
		case ts >= 300:
			outMean += f[0]
			outN++
		}
	}
	inMean /= float64(inN)
	outMean /= float64(outN)
	if inMean-outMean < 0.2 {
		t.Errorf("highlight frames not shifted: in=%g out=%g", inMean, outMean)
	}
	if math.IsNaN(inMean) || math.IsNaN(outMean) {
		t.Fatal("NaN frame features")
	}
}

func TestFrameFeaturesGameChannelsDiffer(t *testing.T) {
	// LoL lights dims 0-2, Dota2 dims 1-3: dim 0 must carry signal only
	// for LoL, dim 3 only for Dota2.
	shift := func(game string, dim int) float64 {
		rng := stats.NewRand(9)
		v := Video{Game: game, Duration: 2000, Highlights: []Interval{{Start: 100, End: 900}}}
		frames := FrameFeatures(rng, v, 8)
		var in, out float64
		var inN, outN int
		for ts, f := range frames {
			if ts >= 110 && ts <= 890 {
				in += f[dim]
				inN++
			} else if ts >= 1000 {
				out += f[dim]
				outN++
			}
		}
		return in/float64(inN) - out/float64(outN)
	}
	if d := shift("lol", 0); d < 0.2 {
		t.Errorf("LoL dim0 shift = %g, want signal", d)
	}
	if d := shift("dota2", 0); d > 0.2 {
		t.Errorf("Dota2 dim0 shift = %g, want none", d)
	}
	if d := shift("dota2", 3); d < 0.2 {
		t.Errorf("Dota2 dim3 shift = %g, want signal", d)
	}
	if d := shift("lol", 3); d > 0.2 {
		t.Errorf("LoL dim3 shift = %g, want none", d)
	}
}

func TestGenerateChannelStats(t *testing.T) {
	rng := stats.NewRand(7)
	vs := GenerateChannelStats(rng, 10, 20)
	if len(vs) != 200 {
		t.Fatalf("videos = %d, want 200", len(vs))
	}
	var chats, viewers []float64
	for _, v := range vs {
		chats = append(chats, v.ChatsPerHour)
		viewers = append(viewers, v.Viewers)
	}
	chatCDF := stats.NewECDF(chats)
	if frac := chatCDF.AtLeast(500); frac < 0.7 {
		t.Errorf("only %.0f%% of videos clear 500 chats/h; paper shape needs >70%%", frac*100)
	}
	viewerCDF := stats.NewECDF(viewers)
	if frac := viewerCDF.AtLeast(100); frac < 0.999 {
		t.Errorf("%.1f%% of videos clear 100 viewers; paper says all", frac*100)
	}
}
