package sim

import (
	"fmt"
	"math/rand"

	"lightor/internal/stats"
)

// VideoData bundles one simulated video with its chat log and ground truth.
type VideoData struct {
	Video Video
	Chat  ChatResult
}

// GenerateDataset creates n videos with chat under the given profile.
// Videos are generated from independent sub-seeds so that requesting a
// larger dataset leaves the earlier videos unchanged — training-size sweeps
// (Figure 6b, 7b) rely on this nesting property.
func GenerateDataset(rng *rand.Rand, p Profile, n int) []VideoData {
	out := make([]VideoData, n)
	for i := range out {
		sub := stats.NewRand(rng.Int63())
		v := GenerateVideo(sub, p, fmt.Sprintf("v%03d", i))
		out[i] = VideoData{Video: v, Chat: GenerateChat(sub, v, p)}
	}
	return out
}

// FrameFeatures simulates per-second visual feature vectors for the
// Joint-LSTM baseline: dim-dimensional unit noise everywhere, with a weak
// shift on a game-dependent subset of dimensions while visual effects are
// on screen. Three realism constraints keep the baseline honest (the
// paper's Joint-LSTM reaches ≈0.6 precision, not 1.0):
//
//   - the effects LAG the true highlight start by a few seconds and linger
//     past its end (explosions, kill banners, replays);
//   - DECOY effects fire outside highlights too — tower kills, shop
//     screens, replays of old fights — so "effects on screen" does not
//     imply "highlight" (the paper's §VIII observation that viewers get
//     excited about clips unrelated to the main theme cuts the same way);
//   - the per-video effect gain varies, so a model tuned on one channel's
//     production style generalizes imperfectly;
//   - LoL and Dota2 light up overlapping-but-different dimensions, so
//     cross-game transfer is partial, as in Figure 11 and Table I.
func FrameFeatures(rng *rand.Rand, v Video, dim int) [][]float64 {
	lo, hi := 0, 3 // LoL-style effect channels
	if v.Game == "dota2" {
		lo, hi = 1, 4
	}
	gain := stats.Clamp(stats.Normal(rng, 1.0, 0.3), 0.4, 1.6)

	// Effect spans: every highlight (lagged), plus ~1.5x as many decoys.
	var effects []Interval
	for _, h := range v.Highlights {
		effects = append(effects, Interval{Start: h.Start + 3, End: h.End + 5})
	}
	nDecoys := len(v.Highlights) * 3 / 2
	for d := 0; d < nDecoys && v.Duration > 140; d++ {
		start := stats.Uniform(rng, 60, v.Duration-70)
		effects = append(effects, Interval{Start: start, End: start + stats.Uniform(rng, 3, 12)})
	}

	n := int(v.Duration)
	frames := make([][]float64, n)
	for t := 0; t < n; t++ {
		f := make([]float64, dim)
		for d := range f {
			f[d] = stats.Normal(rng, 0, 1)
		}
		ft := float64(t)
		for _, e := range effects {
			if e.Contains(ft) {
				for d := lo; d < hi && d < dim; d++ {
					f[d] += gain
				}
				break
			}
		}
		frames[t] = f
	}
	return frames
}

// VideoStats summarizes one recorded video for the applicability study
// (Figure 9): chat volume and audience size.
type VideoStats struct {
	Channel      string
	ChatsPerHour float64
	Viewers      float64
}

// GenerateChannelStats simulates crawling the most recent videos of the
// top channels of a game. Chat volume and viewer counts follow heavy-tailed
// log-normal distributions, matching the shape of the paper's Twitch crawl:
// the bulk of popular-channel videos clear 500 chats/hour, and essentially
// all clear 100 viewers.
func GenerateChannelStats(rng *rand.Rand, channels, videosPerChannel int) []VideoStats {
	var out []VideoStats
	for c := 0; c < channels; c++ {
		name := fmt.Sprintf("channel%02d", c)
		// Channel popularity shifts both distributions coherently.
		pop := stats.Normal(rng, 0, 0.5)
		for v := 0; v < videosPerChannel; v++ {
			out = append(out, VideoStats{
				Channel:      name,
				ChatsPerHour: stats.LogNormal(rng, 7.25+pop, 0.85),
				Viewers:      150 + stats.LogNormal(rng, 7.5+pop, 1.0),
			})
		}
	}
	return out
}
