// Package sim is the synthetic substitute for the paper's data sources:
// Twitch chat logs (60 Dota2 + 173 LoL videos) and the play data collected
// from 492 Amazon Mechanical Turk workers. Neither resource is reachable
// from an offline library, so sim generates equivalents that exercise the
// same code paths and preserve the statistical structure the paper's
// techniques exploit:
//
//   - chat bursts that FOLLOW highlights by a reaction delay (~25 s), made
//     of short, mutually similar messages (Figure 2);
//   - background chatter, long off-topic discussion bursts, and
//     advertisement chat-bot bursts — the noise sources that break the
//     naive count-the-messages detector (Section IV-C1);
//   - viewer play behaviour around red dots that is near-uniform when the
//     dot lands after the highlight (Type I) and near-normal when it lands
//     before the end (Type II), matching Figure 3.
//
// All generators take an explicit *rand.Rand and are fully deterministic
// given the seed.
package sim

import (
	"fmt"
	"math/rand"

	"lightor/internal/core"
	"lightor/internal/stats"
)

// Interval aliases the core interval type: simulated ground truth feeds
// directly into the workflow and evaluation code without conversion.
type Interval = core.Interval

// Video is a recorded live video with ground-truth highlight annotations.
type Video struct {
	ID         string
	Game       string
	Duration   float64 // seconds
	Highlights []Interval
}

// Profile bundles the per-game generation parameters. Two stock profiles
// mirror the paper's datasets: Dota2Profile (Twitch personal channels) and
// LoLProfile (NALCS championship broadcasts). They differ in video length,
// highlight density, chat vocabulary, and chat-noise mix, which is exactly
// the difference the generalization experiments (Figure 11) lean on.
type Profile struct {
	Game string

	// Video shape.
	MinDuration, MaxDuration         float64
	MeanHighlights                   int
	MinHighlightLen, MaxHighlightLen float64

	// Chat behaviour.
	BackgroundRate     float64 // messages/second of ambient chatter
	BurstMin, BurstMax int     // messages per highlight burst
	ReactionDelayMean  float64 // seconds from highlight start to burst peak
	ReactionDelayStd   float64
	BurstSpread        float64 // stddev of message times around the peak
	DiscussionPerHour  float64 // off-topic discussion bursts per hour
	BotPerHour         float64 // advertisement chat-bot bursts per hour

	// Vocabulary.
	ExcitedVocab []string // short hype words and emotes
	CasualVocab  []string // everything else
	BotAds       []string // long advertisement lines
}

// Dota2Profile returns the generation profile for Dota2-like personal
// channel streams: 0.5–2 h videos, ~10 highlights of 5–50 s each.
func Dota2Profile() Profile {
	return Profile{
		Game:              "dota2",
		MinDuration:       1800,
		MaxDuration:       7200,
		MeanHighlights:    10,
		MinHighlightLen:   5,
		MaxHighlightLen:   50,
		BackgroundRate:    0.15,
		BurstMin:          30,
		BurstMax:          80,
		ReactionDelayMean: 25,
		ReactionDelayStd:  6,
		BurstSpread:       6,
		DiscussionPerHour: 5,
		BotPerHour:        3,
		ExcitedVocab: []string{
			"kill", "rampage", "gg", "wow", "insane", "pog", "omg",
			"wombo", "ultrakill", "lmao", "clutch", "nice", "👍", "😄",
		},
		CasualVocab: []string{
			"anyone", "know", "what", "patch", "this", "is", "stream",
			"quality", "today", "lunch", "pizza", "internet", "drops",
			"music", "playlist", "rank", "mmr", "hero", "item", "build",
			"guide", "watching", "from", "work", "hello", "everyone",
			"first", "time", "here", "love", "channel", "how", "long",
			"playing", "game", "favorite", "team", "tournament", "when",
			"next", "match", "weather", "nice", "cat", "dog", "keyboard",
		},
		BotAds: []string{
			"BEST CHEAP SKINS VISIT OUR STORE TODAY BIG DISCOUNT CODE TWITCH",
			"FREE GIVEAWAY CLICK THE LINK IN MY PROFILE TO WIN A KNIFE NOW",
			"BOOST YOUR MMR FAST CHEAP SAFE PROFESSIONAL PLAYERS JOIN NOW",
		},
	}
}

// LoLProfile returns the generation profile for LoL-like championship
// broadcasts: 0.5–1 h videos, ~14 highlights of 2–81 s each, busier chat
// with a different emote vocabulary.
func LoLProfile() Profile {
	return Profile{
		Game:              "lol",
		MinDuration:       1800,
		MaxDuration:       3600,
		MeanHighlights:    14,
		MinHighlightLen:   2,
		MaxHighlightLen:   81,
		BackgroundRate:    0.25,
		BurstMin:          25,
		BurstMax:          70,
		ReactionDelayMean: 24,
		ReactionDelayStd:  6,
		BurstSpread:       6,
		DiscussionPerHour: 6,
		BotPerHour:        2,
		ExcitedVocab: []string{
			"pentakill", "baron", "ace", "gg", "flash", "outplayed",
			"insec", "poggers", "hype", "clean", "wp", "ez", "🔥", "👏",
		},
		CasualVocab: []string{
			"who", "wins", "this", "series", "caster", "voice", "great",
			"crowd", "loud", "arena", "looks", "amazing", "meta", "pick",
			"ban", "phase", "draft", "support", "jungle", "mid", "lane",
			"scaling", "comp", "teamfight", "objective", "dragon", "soul",
			"watching", "with", "friends", "snack", "break", "hello",
			"chat", "from", "europe", "korea", "china", "na", "predictions",
		},
		BotAds: []string{
			"WIN RP CODES EVERY HOUR JOIN OUR DISCORD SERVER LINK BELOW NOW",
			"CHEAP ACCOUNTS ALL REGIONS INSTANT DELIVERY VISIT OUR WEBSITE",
		},
	}
}

// GenerateVideo creates a video with non-overlapping ground-truth
// highlights. Highlight count varies ±30% around the profile mean and
// placements keep at least minGap seconds between highlights so red-dot
// separation (δ = 120 s) is meaningful.
func GenerateVideo(rng *rand.Rand, p Profile, id string) Video {
	duration := stats.Uniform(rng, p.MinDuration, p.MaxDuration)
	n := p.MeanHighlights
	if jitter := n * 3 / 10; jitter > 0 {
		n += stats.IntBetween(rng, -jitter, jitter)
	}
	if n < 1 {
		n = 1
	}
	const minGap = 150.0
	var highlights []Interval
	// Rejection-sample starts; with durations ≥ 30 min and ≤ ~18 highlights
	// this terminates quickly. Cap attempts defensively anyway.
	for attempts := 0; len(highlights) < n && attempts < 10000; attempts++ {
		// Quadratic skew toward short highlights: most kills and plays are
		// brief, long teamfights are rare. This matters for fidelity — the
		// crowd's ~25 s reaction delay overshoots short highlights, which
		// is precisely what defeats unadjusted detectors (Figure 7a) and
		// creates the Type I red dots the extractor must repair (Figure 8).
		r := rng.Float64()
		length := p.MinHighlightLen + (p.MaxHighlightLen-p.MinHighlightLen)*r*r
		start := stats.Uniform(rng, 60, duration-length-60)
		ok := true
		for _, h := range highlights {
			if start < h.End+minGap && h.Start < start+length+minGap {
				ok = false
				break
			}
		}
		if ok {
			highlights = append(highlights, Interval{Start: start, End: start + length})
		}
	}
	// Sort chronologically for stable downstream behaviour.
	for a := 1; a < len(highlights); a++ {
		for b := a; b > 0 && highlights[b].Start < highlights[b-1].Start; b-- {
			highlights[b], highlights[b-1] = highlights[b-1], highlights[b]
		}
	}
	return Video{
		ID:         fmt.Sprintf("%s-%s", p.Game, id),
		Game:       p.Game,
		Duration:   duration,
		Highlights: highlights,
	}
}
