package sim

import (
	"testing"

	"lightor/internal/stats"
)

func TestGenerateVideoShape(t *testing.T) {
	rng := stats.NewRand(1)
	for i := 0; i < 20; i++ {
		v := GenerateVideo(rng, Dota2Profile(), "t")
		if v.Duration < 1800 || v.Duration > 7200 {
			t.Errorf("duration %g outside [1800, 7200]", v.Duration)
		}
		if len(v.Highlights) < 1 {
			t.Fatal("video has no highlights")
		}
		for _, h := range v.Highlights {
			if h.Duration() < 5 || h.Duration() > 50 {
				t.Errorf("highlight length %g outside [5, 50]", h.Duration())
			}
			if h.Start < 0 || h.End > v.Duration {
				t.Errorf("highlight [%g, %g] outside video", h.Start, h.End)
			}
		}
	}
}

func TestGenerateVideoHighlightsSeparatedAndSorted(t *testing.T) {
	rng := stats.NewRand(2)
	v := GenerateVideo(rng, Dota2Profile(), "t")
	for i := 1; i < len(v.Highlights); i++ {
		prev, cur := v.Highlights[i-1], v.Highlights[i]
		if cur.Start < prev.Start {
			t.Fatal("highlights not sorted")
		}
		if cur.Start-prev.End < 150 {
			t.Errorf("highlights too close: %g", cur.Start-prev.End)
		}
	}
}

func TestGenerateVideoDeterministic(t *testing.T) {
	a := GenerateVideo(stats.NewRand(7), LoLProfile(), "x")
	b := GenerateVideo(stats.NewRand(7), LoLProfile(), "x")
	if a.Duration != b.Duration || len(a.Highlights) != len(b.Highlights) {
		t.Fatal("same seed produced different videos")
	}
}

func TestIntervalHelpers(t *testing.T) {
	iv := Interval{Start: 10, End: 20}
	if iv.Duration() != 10 {
		t.Errorf("Duration = %g", iv.Duration())
	}
	if !iv.Contains(10) || !iv.Contains(20) || iv.Contains(21) || iv.Contains(9) {
		t.Error("Contains boundaries wrong")
	}
}

func TestProfilesDiffer(t *testing.T) {
	d, l := Dota2Profile(), LoLProfile()
	if d.Game == l.Game {
		t.Error("profiles share a game name")
	}
	shared := 0
	for _, w := range d.ExcitedVocab {
		for _, x := range l.ExcitedVocab {
			if w == x {
				shared++
			}
		}
	}
	if shared == len(d.ExcitedVocab) {
		t.Error("profiles share the entire excited vocabulary; generalization experiments need differing domains")
	}
}

func TestNearestHighlight(t *testing.T) {
	v := Video{Highlights: []Interval{{Start: 100, End: 120}, {Start: 500, End: 520}}}
	h, ok := NearestHighlight(v, 130)
	if !ok || h.Start != 100 {
		t.Errorf("NearestHighlight(130) = %+v, %v", h, ok)
	}
	h, _ = NearestHighlight(v, 490)
	if h.Start != 500 {
		t.Errorf("NearestHighlight(490) = %+v", h)
	}
	h, _ = NearestHighlight(v, 110) // inside the first
	if h.Start != 100 {
		t.Errorf("NearestHighlight(inside) = %+v", h)
	}
	if _, ok := NearestHighlight(Video{}, 5); ok {
		t.Error("empty video should report no highlight")
	}
}
