package sim

import (
	"fmt"
	"math/rand"

	"lightor/internal/play"
	"lightor/internal/stats"
)

// ViewerBehavior parameterizes the simulated crowd around one red dot.
// Defaults (DefaultViewerBehavior) are tuned so the play-start offset
// distributions match Figure 3: near-normal with median 5–10 s for Type II
// dots, near-uniform over [−40, +20] s for Type I dots.
type ViewerBehavior struct {
	// SkipAheadProb is the chance a Type II viewer seeks past the dull
	// lead-in to just after the highlight's real start.
	SkipAheadProb float64
	// StartOffsetMean/Std shape where skipping viewers land relative to the
	// highlight start ("the most exciting part usually happens a few
	// seconds after its start point").
	StartOffsetMean, StartOffsetStd float64
	// EndOffsetStd shapes where viewers stop relative to the highlight end.
	EndOffsetStd float64
	// CheckProb is the chance of an extra short "is this interesting?"
	// probe play near the dot.
	CheckProb float64
	// LongWatchProb is the chance a viewer keeps watching far past the
	// highlight (filtered as "too long" by the extractor).
	LongWatchProb float64
	// WanderProb is the chance a viewer's attention span, not the
	// highlight's end, decides where they stop — the "casual viewing is
	// unpredictable" behaviour the paper calls out (Section II). Wandering
	// plays blur histogram-based detectors; the extractor's median
	// aggregation shrugs them off.
	WanderProb float64
	// SearchBackSpan is how far before the dot Type I viewers scrub while
	// hunting for the missed highlight.
	SearchBackSpan float64
}

// DefaultViewerBehavior returns the tuned behaviour profile.
func DefaultViewerBehavior() ViewerBehavior {
	return ViewerBehavior{
		SkipAheadProb:   0.75,
		StartOffsetMean: 7,
		StartOffsetStd:  3.5,
		EndOffsetStd:    4,
		CheckProb:       0.25,
		LongWatchProb:   0.1,
		WanderProb:      0.3,
		SearchBackSpan:  40,
	}
}

// SimulateViewer generates the raw player events of one viewer who clicks
// the red dot at position dot, where h is the highlight the dot was meant
// to mark. The viewer's behaviour depends on the dot/highlight geometry:
//
//   - dot ≤ h.End (Type II): the viewer sees the highlight. Most seek past
//     the lead-in and land a few seconds after h.Start, watching until
//     roughly h.End.
//   - dot > h.End (Type I): the viewer missed the highlight. They probe
//     forward briefly, scrub backward over [dot−SearchBackSpan, dot], or
//     give up — short scattered plays, many ending before the dot.
func SimulateViewer(rng *rand.Rand, user string, v Video, dot float64, h Interval, b ViewerBehavior) []play.Event {
	var events []play.Event
	seq := 0
	emit := func(t play.EventType, pos float64) {
		events = append(events, play.Event{
			User: user,
			Seq:  seq,
			Type: t,
			Pos:  stats.Clamp(pos, 0, v.Duration),
		})
		seq++
	}

	// Optional probe BEFORE settling in: the viewer pokes at a nearby spot
	// for a second or two, then jumps to the dot. The jump shows up as a
	// Seek→Play pair — exactly the random-vote noise that makes seek-based
	// detectors unreliable on casual viewing data (Section II).
	if stats.Bernoulli(rng, b.CheckProb) {
		pos := dot + stats.Uniform(rng, -30, 30)
		emit(play.EventPlay, pos)
		emit(play.EventSeek, pos+stats.Uniform(rng, 1, 4))
	}

	// A highlight more than ~45 s past the dot is effectively invisible: no
	// viewer sits through that much dull lead-in, so the session looks like
	// a fruitless browse (the false-positive-dot case, e.g. a bot burst the
	// initializer mistook for a highlight).
	const reachAhead = 45.0
	if dot <= h.End && h.Start-dot <= reachAhead {
		// Type II: the dot is usable.
		if stats.Bernoulli(rng, b.SkipAheadProb) {
			// Probe from the dot for a moment, then seek to the action.
			probeEnd := dot + stats.Uniform(rng, 1, 3)
			target := h.Start + stats.Normal(rng, b.StartOffsetMean, b.StartOffsetStd)
			if target < dot {
				target = dot
			}
			emit(play.EventPlay, dot)
			emit(play.EventSeek, probeEnd)
			emit(play.EventPlay, target)
		} else {
			start := dot
			if start < h.Start-15 {
				// Even patient viewers will not sit through a long lead-in.
				start = h.Start - stats.Uniform(rng, 5, 15)
			}
			emit(play.EventPlay, start)
		}
		end := h.End + stats.Normal(rng, 2, b.EndOffsetStd)
		if stats.Bernoulli(rng, b.WanderProb) {
			// Attention span ends wherever it ends.
			end = events[len(events)-1].Pos + stats.Uniform(rng, 8, 60)
		}
		if stats.Bernoulli(rng, b.LongWatchProb) {
			end = h.End + stats.Uniform(rng, 60, 200) // keeps watching the stream
		}
		if end <= events[len(events)-1].Pos {
			end = events[len(events)-1].Pos + 1
		}
		emit(play.EventStop, end)
	} else {
		// Type I: the dot points past the highlight.
		r := rng.Float64()
		switch {
		case r < 0.5:
			// Scrub backward hunting for the highlight: 1–3 short probes.
			probes := stats.IntBetween(rng, 1, 3)
			for i := 0; i < probes; i++ {
				start := stats.Uniform(rng, dot-b.SearchBackSpan, dot+5)
				length := stats.Uniform(rng, 3, 15)
				emit(play.EventPlay, start)
				emit(play.EventSeek, start+length)
			}
			emit(play.EventStop, events[len(events)-1].Pos)
		case r < 0.8:
			// Probe forward from the dot, then give up.
			emit(play.EventPlay, dot)
			emit(play.EventStop, dot+stats.Uniform(rng, 3, 10))
		default:
			// Watch from the dot for a while before leaving.
			emit(play.EventPlay, dot)
			emit(play.EventStop, dot+stats.Uniform(rng, 10, 30))
		}
	}

	return events
}

// SimulateCrowd runs n viewers against one red dot and returns their
// sessionized play records. User IDs are deterministic per call.
func SimulateCrowd(rng *rand.Rand, n int, v Video, dot float64, h Interval, b ViewerBehavior) []play.Play {
	var events []play.Event
	for i := 0; i < n; i++ {
		user := fmt.Sprintf("worker%03d", i)
		events = append(events, SimulateViewer(rng, user, v, dot, h, b)...)
	}
	return play.Sessionize(events)
}

// NearestHighlight returns the highlight whose span is closest to the
// position x (distance 0 when x falls inside a highlight). The second
// return is false when the video has no highlights.
func NearestHighlight(v Video, x float64) (Interval, bool) {
	if len(v.Highlights) == 0 {
		return Interval{}, false
	}
	best := v.Highlights[0]
	bestDist := intervalDistance(best, x)
	for _, h := range v.Highlights[1:] {
		if d := intervalDistance(h, x); d < bestDist {
			best, bestDist = h, d
		}
	}
	return best, true
}

func intervalDistance(h Interval, x float64) float64 {
	switch {
	case x < h.Start:
		return h.Start - x
	case x > h.End:
		return x - h.End
	default:
		return 0
	}
}
