package sim

import (
	"testing"

	"lightor/internal/play"
	"lightor/internal/stats"
)

func crowdVideo() Video {
	return Video{
		ID:         "t",
		Duration:   3600,
		Highlights: []Interval{{Start: 1990, End: 2005}},
	}
}

func TestSimulateCrowdTypeIIOffsets(t *testing.T) {
	// Dot placed just before the highlight start: Type II. Play starts
	// should concentrate a few seconds after the true start (Figure 3b).
	rng := stats.NewRand(1)
	v := crowdVideo()
	h := v.Highlights[0]
	dot := h.Start - 5
	plays := SimulateCrowd(rng, 200, v, dot, h, DefaultViewerBehavior())
	if len(plays) == 0 {
		t.Fatal("no plays generated")
	}
	// Consider only substantial plays (the main viewing spans).
	var offsets []float64
	for _, p := range plays {
		if p.Duration() >= 8 && p.Duration() <= 60 {
			offsets = append(offsets, p.Start-h.Start)
		}
	}
	if len(offsets) < 50 {
		t.Fatalf("too few main plays: %d", len(offsets))
	}
	med := stats.Median(offsets)
	if med < 0 || med > 12 {
		t.Errorf("Type II start-offset median = %g, want ~5-10", med)
	}
}

func TestSimulateCrowdTypeISpread(t *testing.T) {
	// Dot placed after the highlight end: Type I. Starts spread widely and
	// a meaningful share of plays end before the dot (the backward search).
	rng := stats.NewRand(2)
	v := crowdVideo()
	h := v.Highlights[0]
	dot := h.End + 15
	plays := SimulateCrowd(rng, 200, v, dot, h, DefaultViewerBehavior())
	if len(plays) == 0 {
		t.Fatal("no plays generated")
	}
	var starts []float64
	endBefore := 0
	for _, p := range plays {
		starts = append(starts, p.Start)
		if p.End < dot {
			endBefore++
		}
	}
	if spread := stats.Stddev(starts); spread < 8 {
		t.Errorf("Type I starts too concentrated: stddev = %g", spread)
	}
	if endBefore == 0 {
		t.Error("Type I crowd produced no plays ending before the dot")
	}
}

func TestTypeIIHasFewPlaysBeforeDot(t *testing.T) {
	// The extractor's classifier depends on this asymmetry (Figure 4).
	rng := stats.NewRand(3)
	v := crowdVideo()
	h := v.Highlights[0]
	dotII := h.Start - 5
	dotI := h.End + 15
	countBefore := func(dot float64) int {
		plays := SimulateCrowd(rng, 150, v, dot, h, DefaultViewerBehavior())
		n := 0
		for _, p := range plays {
			if p.End < dot {
				n++
			}
		}
		return n
	}
	beforeII := countBefore(dotII)
	beforeI := countBefore(dotI)
	if beforeI <= beforeII {
		t.Errorf("Type I should have more plays before the dot: I=%d II=%d", beforeI, beforeII)
	}
}

func TestSimulateViewerEventsValid(t *testing.T) {
	rng := stats.NewRand(4)
	v := crowdVideo()
	h := v.Highlights[0]
	for i := 0; i < 100; i++ {
		dot := h.Start - 20 + float64(i) // sweep across both types
		events := SimulateViewer(rng, "u", v, dot, h, DefaultViewerBehavior())
		if len(events) == 0 {
			t.Fatal("viewer produced no events")
		}
		for _, e := range events {
			if e.Pos < 0 || e.Pos > v.Duration {
				t.Fatalf("event position %g outside video", e.Pos)
			}
		}
		for _, p := range play.Sessionize(events) {
			if err := p.Validate(); err != nil {
				t.Fatalf("invalid play: %v", err)
			}
		}
	}
}

func TestSimulateCrowdDeterministic(t *testing.T) {
	v := crowdVideo()
	h := v.Highlights[0]
	a := SimulateCrowd(stats.NewRand(5), 20, v, 2000, h, DefaultViewerBehavior())
	b := SimulateCrowd(stats.NewRand(5), 20, v, 2000, h, DefaultViewerBehavior())
	if len(a) != len(b) {
		t.Fatal("same seed produced different crowds")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different plays")
		}
	}
}
