// Package stats provides the small numeric toolkit LIGHTOR is built on:
// descriptive statistics, histograms, curve smoothing, peak detection,
// empirical distributions, and seeded random samplers.
//
// Everything in this package is deterministic given the caller's inputs; the
// samplers take an explicit *rand.Rand so that simulations and experiments
// are reproducible.
package stats

import (
	"math"
	"sort"
)

// Sum returns the sum of xs. An empty slice sums to 0.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// observations.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest value in xs. It panics on an empty slice, because
// there is no sensible zero value for a minimum.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value in xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, the robust aggregator used by the
// Highlight Extractor (Section V-B of the paper). For an even number of
// observations it returns the mean of the two central values. It returns 0
// for an empty slice.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	// Halve before adding so the midpoint cannot overflow at float64 extremes.
	return s[n/2-1]/2 + s[n/2]/2
}

// Quantile returns the p-quantile of xs (0 ≤ p ≤ 1) using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// clamps p into [0, 1].
func Quantile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if n == 1 {
		return s[0]
	}
	pos := p * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// ArgMax returns the index of the largest element of xs, breaking ties in
// favour of the earliest index. It returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// ArgMin returns the index of the smallest element of xs, breaking ties in
// favour of the earliest index. It returns -1 for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

// Clamp limits x into [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
