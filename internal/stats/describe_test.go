package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestSum(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{3.5}, 3.5},
		{"mixed", []float64{1, -2, 3.5}, 2.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Sum(c.in); got != c.want {
				t.Errorf("Sum(%v) = %g, want %g", c.in, got, c.want)
			}
		})
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %g, want 4", got)
	}
}

func TestVarianceAndStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Stddev = %g, want 2", got)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of singleton = %g, want 0", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %g, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %g, want 7", got)
	}
}

func TestMinPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestMedian(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"odd", []float64{5, 1, 3}, 3},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"outlier-robust", []float64{1, 2, 3, 1000}, 2.5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Median(c.in); got != c.want {
				t.Errorf("Median(%v) = %g, want %g", c.in, got, c.want)
			}
		})
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
		{-0.5, 1}, {1.5, 5}, // clamped
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(p=%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %g, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.3); got != 7 {
		t.Errorf("Quantile singleton = %g, want 7", got)
	}
}

func TestQuantileInterpolates(t *testing.T) {
	xs := []float64{0, 10}
	if got := Quantile(xs, 0.5); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Quantile interpolation = %g, want 5", got)
	}
}

func TestArgMaxArgMin(t *testing.T) {
	xs := []float64{1, 5, 3, 5, 0}
	if got := ArgMax(xs); got != 1 {
		t.Errorf("ArgMax = %d, want 1 (earliest tie)", got)
	}
	if got := ArgMin(xs); got != 4 {
		t.Errorf("ArgMin = %d, want 4", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Errorf("ArgMax(nil) = %d, want -1", got)
	}
	if got := ArgMin(nil); got != -1 {
		t.Errorf("ArgMin(nil) = %d, want -1", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 3); got != 3 {
		t.Errorf("Clamp above = %g, want 3", got)
	}
	if got := Clamp(-1, 0, 3); got != 0 {
		t.Errorf("Clamp below = %g, want 0", got)
	}
	if got := Clamp(2, 0, 3); got != 2 {
		t.Errorf("Clamp inside = %g, want 2", got)
	}
}

// Property: the median always lies between min and max of the sample.
func TestMedianBoundedProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Median(xs)
		return m >= Min(xs) && m <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in p.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Abs(math.Mod(p1, 1))
		p2 = math.Abs(math.Mod(p2, 1))
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		return Quantile(xs, p1) <= Quantile(xs, p2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
