package stats

import "sort"

// ECDF is an empirical cumulative distribution function over a sample.
// The applicability study (Figure 9) plots ECDFs of chats-per-hour and
// viewers-per-video across crawled recordings.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an ECDF from the sample xs. The input is copied.
func NewECDF(xs []float64) *ECDF {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns P(X ≤ x) under the empirical distribution, in [0, 1].
// An empty sample yields 0.
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.SearchFloat64s(e.sorted, x)
	for i < len(e.sorted) && e.sorted[i] == x {
		i++
	}
	return float64(i) / float64(len(e.sorted))
}

// AtLeast returns P(X ≥ x), the fraction of the sample at or above x.
// This is the form quoted in the paper ("more than 80% of recorded videos
// have more than 500 chat messages per hour").
func (e *ECDF) AtLeast(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, x)
	return float64(len(e.sorted)-i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *ECDF) Len() int { return len(e.sorted) }

// Values returns the sorted sample. The caller must not modify it.
func (e *ECDF) Values() []float64 { return e.sorted }

// DensityHistogram bins the sample xs into the given range and returns the
// bin centers and a density estimate (fraction per unit of x) per bin. It is
// used to reproduce the play-offset density curves of Figure 3.
func DensityHistogram(xs []float64, lo, hi float64, bins int) (centers, density []float64) {
	h := NewHistogram(lo, hi, bins)
	inside := 0
	for _, x := range xs {
		if x >= lo && x < hi {
			inside++
		}
		h.Add(x)
	}
	centers = make([]float64, bins)
	density = make([]float64, bins)
	for i := 0; i < bins; i++ {
		centers[i] = h.BinCenter(i)
		if inside > 0 {
			density[i] = h.Count(i) / (float64(inside) * h.BinWidth())
		}
	}
	return centers, density
}
