package stats

import (
	"testing"
	"testing/quick"
)

func TestECDFAt(t *testing.T) {
	e := NewECDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x    float64
		want float64
	}{
		{0, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); got != c.want {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestECDFAtLeast(t *testing.T) {
	e := NewECDF([]float64{100, 600, 800, 2000})
	if got := e.AtLeast(500); got != 0.75 {
		t.Errorf("AtLeast(500) = %g, want 0.75", got)
	}
	if got := e.AtLeast(100); got != 1 {
		t.Errorf("AtLeast(100) = %g, want 1", got)
	}
	if got := e.AtLeast(5000); got != 0 {
		t.Errorf("AtLeast(5000) = %g, want 0", got)
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if e.At(3) != 0 || e.AtLeast(3) != 0 || e.Len() != 0 {
		t.Error("empty ECDF should report zeros")
	}
}

func TestECDFDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := NewECDF(in)
	in[0] = 100
	if e.AtLeast(50) != 0 {
		t.Error("ECDF aliased caller's slice")
	}
}

// Property: At is monotone non-decreasing and bounded in [0,1], and
// At(x) + AtLeast(x) >= 1 (they overlap exactly on ties at x).
func TestECDFProperties(t *testing.T) {
	f := func(sample []float64, x1, x2 float64) bool {
		e := NewECDF(sample)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		a1, a2 := e.At(x1), e.At(x2)
		if a1 > a2 || a1 < 0 || a2 > 1 {
			return false
		}
		if len(sample) > 0 && e.At(x1)+e.AtLeast(x1) < 1-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDensityHistogram(t *testing.T) {
	xs := []float64{0.5, 0.5, 1.5, 5}
	centers, density := DensityHistogram(xs, 0, 2, 2)
	if len(centers) != 2 || centers[0] != 0.5 || centers[1] != 1.5 {
		t.Fatalf("centers = %v", centers)
	}
	// 3 points inside; bin width 1. Densities: 2/3 and 1/3.
	if !almostEqual(density[0], 2.0/3, 1e-12) || !almostEqual(density[1], 1.0/3, 1e-12) {
		t.Errorf("density = %v, want [0.667 0.333]", density)
	}
	// Integral over the histogram should be ~1 for the in-range mass.
	if !almostEqual(density[0]*1+density[1]*1, 1, 1e-12) {
		t.Errorf("density does not integrate to 1")
	}
}

func TestDensityHistogramEmpty(t *testing.T) {
	_, density := DensityHistogram(nil, 0, 1, 4)
	for _, d := range density {
		if d != 0 {
			t.Errorf("density of empty sample = %v", density)
		}
	}
}
