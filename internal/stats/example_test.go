package stats_test

import (
	"fmt"

	"lightor/internal/stats"
)

// Median is the extractor's aggregation primitive: one wild outlier cannot
// drag the boundary.
func ExampleMedian() {
	fmt.Println(stats.Median([]float64{1990, 1991, 1992, 2500}))
	// Output: 1991.5
}

// Histograms accept range votes: a play record votes for every second it
// covers, which is how the MOOCer baseline builds its curve.
func ExampleHistogram_AddRange() {
	h := stats.NewHistogram(0, 10, 10)
	h.AddRange(2, 5, 1)
	h.AddRange(3, 6, 1)
	fmt.Println(h.Counts())
	// Output: [0 0 1 2 2 2 1 0 0 0]
}

// ECDFs answer the applicability questions of Figure 9 directly.
func ExampleECDF_AtLeast() {
	e := stats.NewECDF([]float64{200, 600, 900, 1500})
	fmt.Printf("%.2f of videos clear 500 chats/hour\n", e.AtLeast(500))
	// Output: 0.75 of videos clear 500 chats/hour
}

// SeparatedMaxima enforces the red-dot separation rule δ while picking
// peaks tallest-first.
func ExampleSeparatedMaxima() {
	curve := []float64{0, 9, 0, 8, 0, 0, 0, 7, 0}
	fmt.Println(stats.SeparatedMaxima(curve, 2, 3, 0.5))
	// Output: [1 7]
}
