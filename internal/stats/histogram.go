package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width binning of a numeric range. It is the shared
// substrate for the chat-rate curves of the Highlight Initializer (Figure 2a)
// and for the interaction histograms built by the SocialSkip and MOOCer
// baselines (Section VII-C), which add +1/-1 weight over *ranges* of bins.
type Histogram struct {
	lo, hi float64 // covered range [lo, hi)
	width  float64 // width of each bin
	counts []float64
}

// NewHistogram creates a histogram over [lo, hi) with the given number of
// bins. It panics if hi ≤ lo or bins < 1, because a degenerate histogram is
// always a programming error in this codebase.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if hi <= lo {
		panic(fmt.Sprintf("stats: NewHistogram range [%g, %g) is empty", lo, hi))
	}
	if bins < 1 {
		panic(fmt.Sprintf("stats: NewHistogram needs at least 1 bin, got %d", bins))
	}
	return &Histogram{
		lo:     lo,
		hi:     hi,
		width:  (hi - lo) / float64(bins),
		counts: make([]float64, bins),
	}
}

// Reset re-ranges the histogram over [lo, hi) with the given bin count and
// clears all weights, reusing the counts array whenever its capacity allows.
// It lets a streaming consumer (one histogram per sliding window, forever)
// run without per-window allocations. Same panics as NewHistogram.
func (h *Histogram) Reset(lo, hi float64, bins int) {
	if hi <= lo {
		panic(fmt.Sprintf("stats: Histogram.Reset range [%g, %g) is empty", lo, hi))
	}
	if bins < 1 {
		panic(fmt.Sprintf("stats: Histogram.Reset needs at least 1 bin, got %d", bins))
	}
	h.lo = lo
	h.hi = hi
	h.width = (hi - lo) / float64(bins)
	if cap(h.counts) >= bins {
		h.counts = h.counts[:bins]
		for i := range h.counts {
			h.counts[i] = 0
		}
	} else {
		h.counts = make([]float64, bins)
	}
}

// Bins returns the number of bins.
func (h *Histogram) Bins() int { return len(h.counts) }

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return h.width }

// Lo returns the inclusive lower bound of the histogram range.
func (h *Histogram) Lo() float64 { return h.lo }

// Hi returns the exclusive upper bound of the histogram range.
func (h *Histogram) Hi() float64 { return h.hi }

// BinIndex returns the bin holding x, clamped into the valid range so that
// x == hi lands in the final bin. The boolean reports whether x fell inside
// [lo, hi].
func (h *Histogram) BinIndex(x float64) (int, bool) {
	ok := x >= h.lo && x < h.hi
	i := int((x - h.lo) / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.counts) {
		i = len(h.counts) - 1
	}
	return i, ok
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.lo + (float64(i)+0.5)*h.width
}

// Add records a single observation at x with weight 1. Observations outside
// [lo, hi) are dropped silently, mirroring how chat messages outside the
// video duration are ignored.
func (h *Histogram) Add(x float64) { h.AddWeighted(x, 1) }

// AddWeighted records an observation at x with the given weight (which may
// be negative — SocialSkip subtracts weight for Seek Forward jumps).
func (h *Histogram) AddWeighted(x, w float64) {
	if i, ok := h.BinIndex(x); ok {
		h.counts[i] += w
	}
}

// AddRange adds weight w to every bin overlapping [from, to). This is how
// play records vote for every second of video they cover.
func (h *Histogram) AddRange(from, to, w float64) {
	if to < from {
		from, to = to, from
	}
	from = math.Max(from, h.lo)
	to = math.Min(to, h.hi)
	if to <= from {
		return
	}
	start, _ := h.BinIndex(from)
	// BinIndex clamps, so derive the end bin directly and cap it.
	end := int((to - h.lo) / h.width)
	if end >= len(h.counts) {
		end = len(h.counts) - 1
	}
	for i := start; i <= end; i++ {
		h.counts[i] += w
	}
}

// RestoreCounts overwrites the per-bin weights with a previously captured
// Counts slice, so a mid-window histogram can be reconstructed exactly when
// a checkpointed stream resumes. The length must match Bins.
func (h *Histogram) RestoreCounts(counts []float64) error {
	if len(counts) != len(h.counts) {
		return fmt.Errorf("stats: RestoreCounts got %d bins, histogram has %d", len(counts), len(h.counts))
	}
	copy(h.counts, counts)
	return nil
}

// Counts returns a copy of the per-bin weights.
func (h *Histogram) Counts() []float64 {
	out := make([]float64, len(h.counts))
	copy(out, h.counts)
	return out
}

// Count returns the weight in bin i.
func (h *Histogram) Count(i int) float64 { return h.counts[i] }

// Total returns the sum of all bin weights.
func (h *Histogram) Total() float64 { return Sum(h.counts) }

// Smoothed returns the bin weights smoothed with a centered moving average
// of the given window (see MovingAverage).
func (h *Histogram) Smoothed(window int) []float64 {
	return MovingAverage(h.counts, window)
}

// PeakBin returns the index of the heaviest bin after smoothing with the
// given window, i.e. the "peak" the naive implementation of the Highlight
// Initializer would select (Section IV-C1).
func (h *Histogram) PeakBin(window int) int {
	return ArgMax(h.Smoothed(window))
}

// PeakPosition returns the x position of the heaviest smoothed bin.
func (h *Histogram) PeakPosition(window int) float64 {
	return h.BinCenter(h.PeakBin(window))
}

// PeakBinInto is PeakBin without allocations: scratch holds the prefix-sum
// workspace (grown only when too small) and is returned for reuse. The
// selected bin is identical to PeakBin's — the same clamped centered
// moving-average values, compared first-max like ArgMax — so streaming
// callers closing one window per stride forever pay no per-close garbage.
func (h *Histogram) PeakBinInto(window int, scratch []float64) (int, []float64) {
	n := len(h.counts)
	if window <= 1 {
		return ArgMax(h.counts), scratch
	}
	if cap(scratch) >= n+1 {
		scratch = scratch[:n+1]
	} else {
		scratch = make([]float64, n+1)
	}
	scratch[0] = 0
	for i, x := range h.counts {
		scratch[i+1] = scratch[i] + x
	}
	half := window / 2
	best := 0
	bestV := math.Inf(-1)
	for i := 0; i < n; i++ {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= n {
			hi = n - 1
		}
		v := (scratch[hi+1] - scratch[lo]) / float64(hi-lo+1)
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best, scratch
}

// PeakPositionInto is PeakPosition without allocations; see PeakBinInto.
func (h *Histogram) PeakPositionInto(window int, scratch []float64) (float64, []float64) {
	bin, scratch := h.PeakBinInto(window, scratch)
	return h.BinCenter(bin), scratch
}
