package stats

import (
	"testing"
	"testing/quick"
)

func TestNewHistogramPanics(t *testing.T) {
	for _, c := range []struct {
		name   string
		lo, hi float64
		bins   int
	}{
		{"empty-range", 5, 5, 10},
		{"inverted-range", 5, 1, 10},
		{"zero-bins", 0, 1, 0},
	} {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			NewHistogram(c.lo, c.hi, c.bins)
		})
	}
}

func TestHistogramAdd(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0)
	h.Add(0.5)
	h.Add(9.99)
	h.Add(10) // outside [0,10): dropped
	h.Add(-1) // dropped
	if got := h.Count(0); got != 2 {
		t.Errorf("bin 0 = %g, want 2", got)
	}
	if got := h.Count(9); got != 1 {
		t.Errorf("bin 9 = %g, want 1", got)
	}
	if got := h.Total(); got != 3 {
		t.Errorf("Total = %g, want 3", got)
	}
}

func TestHistogramBinIndex(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if i, ok := h.BinIndex(55); i != 5 || !ok {
		t.Errorf("BinIndex(55) = %d,%v want 5,true", i, ok)
	}
	if i, ok := h.BinIndex(-3); i != 0 || ok {
		t.Errorf("BinIndex(-3) = %d,%v want 0,false", i, ok)
	}
	if i, ok := h.BinIndex(200); i != 9 || ok {
		t.Errorf("BinIndex(200) = %d,%v want 9,false", i, ok)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if got := h.BinCenter(0); got != 5 {
		t.Errorf("BinCenter(0) = %g, want 5", got)
	}
	if got := h.BinCenter(9); got != 95 {
		t.Errorf("BinCenter(9) = %g, want 95", got)
	}
}

func TestHistogramAddRange(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddRange(2, 5, 1)
	for i := 0; i < 10; i++ {
		want := 0.0
		if i >= 2 && i <= 5 {
			want = 1
		}
		if got := h.Count(i); got != want {
			t.Errorf("bin %d = %g, want %g", i, got, want)
		}
	}
}

func TestHistogramAddRangeClipsAndSwaps(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddRange(8, 15, 2) // clipped at hi
	h.AddRange(3, -5, 1) // swapped then clipped at lo
	if got := h.Count(9); got != 2 {
		t.Errorf("clipped hi bin = %g, want 2", got)
	}
	if got := h.Count(0); got != 1 {
		t.Errorf("clipped lo bin = %g, want 1", got)
	}
	if got := h.Count(5); got != 0 {
		t.Errorf("untouched bin = %g, want 0", got)
	}
}

func TestHistogramAddRangeNegativeWeight(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.AddRange(0, 10, 1)
	h.AddRange(4, 6, -1) // SocialSkip-style negative vote
	if got := h.Count(5); got != 0 {
		t.Errorf("bin 5 = %g, want 0 after negative vote", got)
	}
	if got := h.Count(1); got != 1 {
		t.Errorf("bin 1 = %g, want 1", got)
	}
}

func TestHistogramPeak(t *testing.T) {
	h := NewHistogram(0, 100, 100)
	for i := 0; i < 20; i++ {
		h.Add(42.5)
	}
	h.Add(10)
	if got := h.PeakBin(1); got != 42 {
		t.Errorf("PeakBin = %d, want 42", got)
	}
	if got := h.PeakPosition(1); got != 42.5 {
		t.Errorf("PeakPosition = %g, want 42.5", got)
	}
}

func TestHistogramCountsIsACopy(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(1)
	c := h.Counts()
	c[0] = 99
	if h.Count(0) == 99 {
		t.Error("Counts() exposed internal storage")
	}
}

// Property: total weight equals the number of in-range points added.
func TestHistogramTotalProperty(t *testing.T) {
	f := func(points []float64) bool {
		h := NewHistogram(0, 1, 7)
		want := 0.0
		for _, p := range points {
			x := p - float64(int(p)) // fractional part, may be negative
			h.Add(x)
			if x >= 0 && x < 1 {
				want++
			}
		}
		return h.Total() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPeakBinIntoMatchesPeakBin pins the allocation-free peak search to the
// allocating one bit-for-bit: the online detector closes windows with
// PeakBinInto while the batch path still uses PeakBin, and the two must
// agree or streaming and replay would place peaks differently.
func TestPeakBinIntoMatchesPeakBin(t *testing.T) {
	rng := NewRand(99)
	var scratch []float64
	for trial := 0; trial < 200; trial++ {
		bins := 1 + rng.Intn(60)
		h := NewHistogram(0, float64(bins), bins)
		for i := 0; i < rng.Intn(200); i++ {
			h.Add(rng.Float64() * float64(bins))
		}
		for _, window := range []int{0, 1, 2, 5, 9} {
			want := h.PeakBin(window)
			var got int
			got, scratch = h.PeakBinInto(window, scratch)
			if got != want {
				t.Fatalf("trial %d bins=%d window=%d: PeakBinInto = %d, PeakBin = %d",
					trial, bins, window, got, want)
			}
		}
	}
}

// TestHistogramReset proves Reset reuses storage and fully clears state.
func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(5)
	h.Reset(100, 125, 25)
	if h.Lo() != 100 || h.Hi() != 125 || h.Bins() != 25 {
		t.Fatalf("Reset geometry: lo=%g hi=%g bins=%d", h.Lo(), h.Hi(), h.Bins())
	}
	if h.Total() != 0 {
		t.Fatalf("Reset left %g weight behind", h.Total())
	}
	h.Add(101.5)
	if i, ok := h.BinIndex(101.5); !ok || h.Count(i) != 1 {
		t.Fatalf("post-Reset Add misplaced: bin %d ok=%v", i, ok)
	}
}
