package stats

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// LatencyHistogram is a log-bucketed histogram of durations built for
// hot-path request timing: Record is a single atomic increment (zero
// allocations, safe for concurrent use), buckets live in a fixed array so
// the zero value is ready to use, and two histograms recorded by
// independent workers merge exactly (bucket-wise addition). Quantiles are
// read from bucket upper bounds, so reported values never understate a
// tail and overstate it by at most the bucket width.
//
// Bucket layout: values below 2^latSubBits nanoseconds get exact
// one-per-value buckets; above that, each power-of-two octave splits into
// 2^latSubBits sub-buckets, bounding relative error at
// 1/2^latSubBits (~3.1%). The whole int64 nanosecond range fits in
// latBucketCount buckets (~15 KiB of counters).
const (
	latSubBits     = 5
	latSubCount    = 1 << latSubBits
	latBucketCount = (64 - latSubBits) * latSubCount
)

// LatencyHistogram must not be copied after first use (it embeds atomic
// counters); share it by pointer.
type LatencyHistogram struct {
	counts [latBucketCount]atomic.Uint64
	total  atomic.Uint64
	sumNs  atomic.Uint64
	maxNs  atomic.Int64
}

// latBucket maps a non-negative nanosecond value to its bucket index.
func latBucket(ns int64) int {
	if ns < latSubCount {
		return int(ns)
	}
	exp := bits.Len64(uint64(ns)) - 1 - latSubBits
	return latSubCount*(exp+1) + int(uint64(ns)>>uint(exp)) - latSubCount
}

// latBucketUpper returns the largest nanosecond value stored in bucket i.
func latBucketUpper(i int) int64 {
	if i < latSubCount {
		return int64(i)
	}
	exp := uint(i/latSubCount - 1)
	sub := int64(i % latSubCount)
	return (latSubCount+sub)<<exp + (1 << exp) - 1
}

// Record adds one observation. Negative durations (clock weirdness) are
// clamped to zero rather than dropped, so Count always matches the number
// of requests timed.
func (h *LatencyHistogram) Record(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	h.counts[latBucket(ns)].Add(1)
	h.total.Add(1)
	h.sumNs.Add(uint64(ns))
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded observations.
func (h *LatencyHistogram) Count() uint64 { return h.total.Load() }

// Max returns the largest recorded duration, or 0 when empty.
func (h *LatencyHistogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the arithmetic mean of recorded durations, or 0 when empty.
func (h *LatencyHistogram) Mean() time.Duration {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns the q-th quantile (0 < q <= 1) of recorded durations,
// rounded up to its bucket's upper bound. Returns 0 when the histogram is
// empty. Panics on q outside (0, 1]. Concurrent Records during a Quantile
// read give a sane approximate answer (each bucket is read once,
// atomically).
func (h *LatencyHistogram) Quantile(q float64) time.Duration {
	if q <= 0 || q > 1 {
		panic("stats: quantile out of range (0, 1]")
	}
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			return time.Duration(latBucketUpper(i))
		}
	}
	return h.Max()
}

// Merge adds other's observations into h. Other may be recorded into
// concurrently; the merge then reflects some consistent-enough snapshot.
func (h *LatencyHistogram) Merge(other *LatencyHistogram) {
	for i := range other.counts {
		if n := other.counts[i].Load(); n != 0 {
			h.counts[i].Add(n)
		}
	}
	h.total.Add(other.total.Load())
	h.sumNs.Add(other.sumNs.Load())
	om := other.maxNs.Load()
	for {
		cur := h.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			return
		}
	}
}

// Reset zeroes the histogram for reuse without reallocating. Not safe
// against concurrent Record calls — quiesce writers first.
func (h *LatencyHistogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sumNs.Store(0)
	h.maxNs.Store(0)
}
