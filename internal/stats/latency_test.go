package stats

import (
	"math"
	"testing"
	"time"
)

func TestLatencyBucketRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bounds contain it, and the
	// bucket's upper bound must overstate the value by at most ~3.2%.
	values := []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<20 + 12345, 1 << 40, math.MaxInt64}
	for _, v := range values {
		b := latBucket(v)
		if b < 0 || b >= latBucketCount {
			t.Fatalf("latBucket(%d) = %d, out of range", v, b)
		}
		up := latBucketUpper(b)
		if up < v {
			t.Errorf("latBucketUpper(latBucket(%d)) = %d < value", v, up)
		}
		if v >= latSubCount {
			if rel := float64(up-v) / float64(v); rel > 1.0/latSubCount {
				t.Errorf("value %d: upper %d relative error %.4f > %.4f", v, up, rel, 1.0/latSubCount)
			}
		}
		if b > 0 && latBucketUpper(b-1) >= v {
			t.Errorf("value %d landed in bucket %d but previous bucket upper %d already covers it", v, b, latBucketUpper(b-1))
		}
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h LatencyHistogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Max() != 0 {
		t.Fatal("zero-value histogram not empty")
	}
	// 1..1000 microseconds, one observation each.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{
		{0.5, 500 * time.Microsecond},
		{0.99, 990 * time.Microsecond},
		{0.999, 999 * time.Microsecond},
		{1.0, 1000 * time.Microsecond},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*(1+2.0/latSubCount) {
			t.Errorf("Quantile(%g) = %v, want within bucket width above %v", c.q, got, c.want)
		}
	}
	if h.Max() != 1000*time.Microsecond {
		t.Errorf("Max = %v, want 1ms", h.Max())
	}
	if mean := h.Mean(); mean < 490*time.Microsecond || mean > 510*time.Microsecond {
		t.Errorf("Mean = %v, want ~500µs", mean)
	}

	defer func() {
		if recover() == nil {
			t.Error("Quantile(0) did not panic")
		}
	}()
	h.Quantile(0)
}

func TestLatencyHistogramMergeMatchesSingle(t *testing.T) {
	var whole, a, b LatencyHistogram
	r := NewRand(7)
	for i := 0; i < 5000; i++ {
		d := time.Duration(r.Int63n(int64(50 * time.Millisecond)))
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), whole.Count())
	}
	if a.Max() != whole.Max() {
		t.Errorf("merged Max = %v, want %v", a.Max(), whole.Max())
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999, 1.0} {
		if got, want := a.Quantile(q), whole.Quantile(q); got != want {
			t.Errorf("merged Quantile(%g) = %v, want %v", q, got, want)
		}
	}

	a.Reset()
	if a.Count() != 0 || a.Max() != 0 || a.Quantile(0.99) != 0 {
		t.Error("Reset did not clear histogram")
	}
}

func TestLatencyRecordZeroAlloc(t *testing.T) {
	var h LatencyHistogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Record allocates %.1f per call, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = h.Quantile(0.99) }); n != 0 {
		t.Errorf("Quantile allocates %.1f per call, want 0", n)
	}
}
