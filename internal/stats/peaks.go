package stats

// LocalMaxima returns the indices of strict local maxima of xs, in
// descending order of height. A plateau counts once, at its first index.
// minHeight filters out maxima below that value; use math.Inf(-1) (or simply
// 0 for non-negative curves) to keep everything.
//
// SocialSkip and MOOCer both reduce their interaction histograms to local
// maxima of a smoothed curve (Section VII-C), so they share this routine.
func LocalMaxima(xs []float64, minHeight float64) []int {
	var peaks []int
	n := len(xs)
	for i := 0; i < n; i++ {
		if xs[i] < minHeight {
			continue
		}
		// Walk left over any plateau: xs[i] must exceed the previous
		// distinct value (or be at the boundary).
		j := i - 1
		for j >= 0 && xs[j] == xs[i] {
			j--
		}
		if j >= 0 && xs[j] >= xs[i] {
			continue
		}
		if j == i-1 && i > 0 && xs[i-1] == xs[i] {
			// Interior of a plateau already counted at its first index.
			continue
		}
		// Walk right over the plateau.
		k := i + 1
		for k < n && xs[k] == xs[i] {
			k++
		}
		if k < n && xs[k] >= xs[i] {
			// Rising edge of a larger hill, not a maximum.
			i = k - 1
			continue
		}
		peaks = append(peaks, i)
		i = k - 1
	}
	// Sort by height descending, stable on index for determinism.
	for a := 1; a < len(peaks); a++ {
		for b := a; b > 0 && xs[peaks[b]] > xs[peaks[b-1]]; b-- {
			peaks[b], peaks[b-1] = peaks[b-1], peaks[b]
		}
	}
	return peaks
}

// SeparatedMaxima returns up to k local-maxima indices of xs such that any
// two selected indices are more than minGap apart, choosing taller peaks
// first. This implements the red-dot separation constraint: two red dots
// closer than δ are not useful to viewers (Section IV-A).
func SeparatedMaxima(xs []float64, k int, minGap int, minHeight float64) []int {
	candidates := LocalMaxima(xs, minHeight)
	var out []int
	for _, c := range candidates {
		if len(out) == k {
			break
		}
		ok := true
		for _, s := range out {
			d := c - s
			if d < 0 {
				d = -d
			}
			if d <= minGap {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// TurningPoints returns, for the local maximum at index peak, the nearest
// indices to the left and right where the curve stops decreasing (i.e. the
// valley or shoulder on each side). MOOCer uses the two turning points
// around each local maximum as the start and end of a highlight.
func TurningPoints(xs []float64, peak int) (left, right int) {
	left = peak
	for left > 0 && xs[left-1] < xs[left] {
		left--
	}
	right = peak
	for right < len(xs)-1 && xs[right+1] < xs[right] {
		right++
	}
	return left, right
}
