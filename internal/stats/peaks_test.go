package stats

import (
	"testing"
)

func TestLocalMaximaBasic(t *testing.T) {
	//          0  1  2  3  4  5  6
	xs := []float64{0, 3, 1, 5, 1, 2, 0}
	got := LocalMaxima(xs, 0)
	want := []int{3, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("LocalMaxima = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("peak %d = %d, want %d (height order)", i, got[i], want[i])
		}
	}
}

func TestLocalMaximaPlateau(t *testing.T) {
	xs := []float64{0, 2, 2, 2, 0}
	got := LocalMaxima(xs, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("plateau maxima = %v, want [1]", got)
	}
}

func TestLocalMaximaRisingPlateauIsNotPeak(t *testing.T) {
	xs := []float64{0, 2, 2, 3, 0}
	got := LocalMaxima(xs, 0)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("maxima = %v, want [3]", got)
	}
}

func TestLocalMaximaBoundaries(t *testing.T) {
	xs := []float64{5, 1, 4}
	got := LocalMaxima(xs, 0)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("boundary maxima = %v, want [0 2]", got)
	}
}

func TestLocalMaximaMinHeight(t *testing.T) {
	xs := []float64{0, 3, 1, 5, 1}
	got := LocalMaxima(xs, 4)
	if len(got) != 1 || got[0] != 3 {
		t.Errorf("filtered maxima = %v, want [3]", got)
	}
}

func TestLocalMaximaEmptyAndFlat(t *testing.T) {
	if got := LocalMaxima(nil, 0); len(got) != 0 {
		t.Errorf("maxima of empty = %v", got)
	}
	flat := []float64{2, 2, 2}
	got := LocalMaxima(flat, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("maxima of flat = %v, want [0]", got)
	}
}

func TestSeparatedMaxima(t *testing.T) {
	// Peaks at 10 (h=9), 12 (h=8), 40 (h=7). minGap=5 should drop index 12.
	xs := make([]float64, 50)
	xs[10] = 9
	xs[12] = 8
	xs[40] = 7
	got := SeparatedMaxima(xs, 3, 5, 0.5)
	if len(got) != 2 || got[0] != 10 || got[1] != 40 {
		t.Errorf("SeparatedMaxima = %v, want [10 40]", got)
	}
}

func TestSeparatedMaximaRespectsK(t *testing.T) {
	xs := make([]float64, 100)
	for i := 10; i < 100; i += 20 {
		xs[i] = float64(i)
	}
	got := SeparatedMaxima(xs, 2, 5, 0.5)
	if len(got) != 2 {
		t.Errorf("k not respected: %v", got)
	}
}

func TestTurningPoints(t *testing.T) {
	//              0  1  2  3  4  5  6
	xs := []float64{5, 1, 3, 9, 4, 2, 8}
	l, r := TurningPoints(xs, 3)
	if l != 1 || r != 5 {
		t.Errorf("TurningPoints = (%d,%d), want (1,5)", l, r)
	}
}

func TestTurningPointsAtBoundary(t *testing.T) {
	xs := []float64{9, 4, 2}
	l, r := TurningPoints(xs, 0)
	if l != 0 || r != 2 {
		t.Errorf("TurningPoints = (%d,%d), want (0,2)", l, r)
	}
}
