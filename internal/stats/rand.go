package stats

import (
	"math"
	"math/rand"
)

// NewRand returns a seeded *rand.Rand. Every stochastic component in this
// repository draws from an explicitly seeded source so that simulations,
// tests, and benchmarks are reproducible run to run.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Normal samples from a normal distribution with the given mean and
// standard deviation.
func Normal(rng *rand.Rand, mean, stddev float64) float64 {
	return rng.NormFloat64()*stddev + mean
}

// Uniform samples uniformly from [lo, hi).
func Uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}

// Poisson samples from a Poisson distribution with rate lambda using
// Knuth's method for small lambda and a normal approximation for large
// lambda (where the approximation error is negligible for our workloads).
func Poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		// Normal approximation with continuity correction.
		n := int(math.Round(Normal(rng, lambda, math.Sqrt(lambda))))
		if n < 0 {
			n = 0
		}
		return n
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Exponential samples from an exponential distribution with the given rate
// (events per unit time). It panics if rate ≤ 0.
func Exponential(rng *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic("stats: Exponential rate must be positive")
	}
	return rng.ExpFloat64() / rate
}

// LogNormal samples from a log-normal distribution where the underlying
// normal has the given mu and sigma. Viewer counts and chat rates across
// channels are heavy-tailed, which log-normal captures well (Figure 9).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(Normal(rng, mu, sigma))
}

// Bernoulli returns true with probability p.
func Bernoulli(rng *rand.Rand, p float64) bool {
	return rng.Float64() < p
}

// IntBetween samples an integer uniformly from [lo, hi]. It panics if
// hi < lo.
func IntBetween(rng *rand.Rand, lo, hi int) int {
	if hi < lo {
		panic("stats: IntBetween requires hi >= lo")
	}
	return lo + rng.Intn(hi-lo+1)
}

// Choice returns a uniformly random element of xs. It panics on an empty
// slice.
func Choice[T any](rng *rand.Rand, xs []T) T {
	if len(xs) == 0 {
		panic("stats: Choice of empty slice")
	}
	return xs[rng.Intn(len(xs))]
}

// WeightedChoice returns an index in [0, len(weights)) sampled proportionally
// to the non-negative weights. It panics if all weights are zero or any is
// negative.
func WeightedChoice(rng *rand.Rand, weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: WeightedChoice weight must be non-negative")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: WeightedChoice requires a positive total weight")
	}
	r := rng.Float64() * total
	for i, w := range weights {
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(weights) - 1
}
