package stats

import (
	"math"
	"testing"
)

func TestNewRandDeterministic(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestNormalMoments(t *testing.T) {
	rng := NewRand(1)
	n := 20000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = Normal(rng, 20, 5)
	}
	if m := Mean(xs); math.Abs(m-20) > 0.2 {
		t.Errorf("Normal mean = %g, want ~20", m)
	}
	if s := Stddev(xs); math.Abs(s-5) > 0.2 {
		t.Errorf("Normal stddev = %g, want ~5", s)
	}
}

func TestUniformRange(t *testing.T) {
	rng := NewRand(2)
	for i := 0; i < 1000; i++ {
		x := Uniform(rng, -3, 7)
		if x < -3 || x >= 7 {
			t.Fatalf("Uniform out of range: %g", x)
		}
	}
}

func TestPoissonMoments(t *testing.T) {
	rng := NewRand(3)
	for _, lambda := range []float64{0.5, 4, 50} {
		n := 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(Poisson(rng, lambda))
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.05*lambda+0.05 {
			t.Errorf("Poisson(λ=%g) mean = %g", lambda, mean)
		}
	}
	if got := Poisson(NewRand(1), 0); got != 0 {
		t.Errorf("Poisson(0) = %d, want 0", got)
	}
	if got := Poisson(NewRand(1), -1); got != 0 {
		t.Errorf("Poisson(-1) = %d, want 0", got)
	}
}

func TestPoissonNonNegative(t *testing.T) {
	rng := NewRand(4)
	for i := 0; i < 1000; i++ {
		if Poisson(rng, 100) < 0 {
			t.Fatal("Poisson returned negative count")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	rng := NewRand(5)
	n := 20000
	var sum float64
	for i := 0; i < n; i++ {
		x := Exponential(rng, 2)
		if x < 0 {
			t.Fatal("Exponential returned negative value")
		}
		sum += x
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Exponential(rate=2) mean = %g, want ~0.5", mean)
	}
}

func TestExponentialPanicsOnBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rate <= 0")
		}
	}()
	Exponential(NewRand(1), 0)
}

func TestLogNormalPositive(t *testing.T) {
	rng := NewRand(6)
	for i := 0; i < 1000; i++ {
		if LogNormal(rng, 0, 1) <= 0 {
			t.Fatal("LogNormal returned non-positive value")
		}
	}
}

func TestBernoulliProbability(t *testing.T) {
	rng := NewRand(7)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if Bernoulli(rng, 0.3) {
			hits++
		}
	}
	p := float64(hits) / float64(n)
	if math.Abs(p-0.3) > 0.02 {
		t.Errorf("Bernoulli(0.3) frequency = %g", p)
	}
}

func TestIntBetween(t *testing.T) {
	rng := NewRand(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := IntBetween(rng, 2, 4)
		if v < 2 || v > 4 {
			t.Fatalf("IntBetween out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Errorf("IntBetween did not cover range: %v", seen)
	}
	if got := IntBetween(rng, 5, 5); got != 5 {
		t.Errorf("IntBetween degenerate = %d, want 5", got)
	}
}

func TestIntBetweenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for hi < lo")
		}
	}()
	IntBetween(NewRand(1), 3, 1)
}

func TestChoice(t *testing.T) {
	rng := NewRand(9)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 300; i++ {
		seen[Choice(rng, xs)] = true
	}
	if len(seen) != 3 {
		t.Errorf("Choice did not cover all elements: %v", seen)
	}
}

func TestChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty slice")
		}
	}()
	Choice(NewRand(1), []int{})
}

func TestWeightedChoice(t *testing.T) {
	rng := NewRand(10)
	weights := []float64{0, 1, 3}
	counts := make([]int, 3)
	n := 40000
	for i := 0; i < n; i++ {
		counts[WeightedChoice(rng, weights)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight option selected %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.3 {
		t.Errorf("weight ratio = %g, want ~3", ratio)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, weights := range [][]float64{{}, {0, 0}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", weights)
				}
			}()
			WeightedChoice(NewRand(1), weights)
		}()
	}
}
