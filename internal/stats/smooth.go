package stats

import "math"

// MovingAverage returns a centered moving average of xs with the given
// window size. The window is clamped at the slice boundaries, so the output
// has the same length as the input and edge values average over fewer
// points. A window ≤ 1 returns a copy of the input.
func MovingAverage(xs []float64, window int) []float64 {
	out := make([]float64, len(xs))
	if window <= 1 {
		copy(out, xs)
		return out
	}
	half := window / 2
	// Prefix sums make each window O(1); the curves smoothed here can cover
	// multi-hour videos at 1-second resolution.
	prefix := make([]float64, len(xs)+1)
	for i, x := range xs {
		prefix[i+1] = prefix[i] + x
	}
	for i := range xs {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half
		if hi >= len(xs) {
			hi = len(xs) - 1
		}
		out[i] = (prefix[hi+1] - prefix[lo]) / float64(hi-lo+1)
	}
	return out
}

// GaussianSmooth convolves xs with a Gaussian kernel of the given standard
// deviation (in bins). The kernel is truncated at ±3σ and renormalized at
// the edges so the curve is not pulled toward zero at the boundaries.
// A sigma ≤ 0 returns a copy of the input.
func GaussianSmooth(xs []float64, sigma float64) []float64 {
	out := make([]float64, len(xs))
	if sigma <= 0 {
		copy(out, xs)
		return out
	}
	radius := int(math.Ceil(3 * sigma))
	kernel := make([]float64, 2*radius+1)
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
	}
	for i := range xs {
		var acc, norm float64
		for k, w := range kernel {
			j := i + k - radius
			if j < 0 || j >= len(xs) {
				continue
			}
			acc += w * xs[j]
			norm += w
		}
		if norm > 0 {
			out[i] = acc / norm
		}
	}
	return out
}
