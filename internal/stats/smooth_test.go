package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMovingAverageIdentityWindow(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := MovingAverage(xs, 1)
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("window=1 changed value at %d: %g != %g", i, got[i], xs[i])
		}
	}
	// Must be a copy, not an alias.
	got[0] = 99
	if xs[0] == 99 {
		t.Error("MovingAverage aliased its input")
	}
}

func TestMovingAverageCentered(t *testing.T) {
	xs := []float64{0, 0, 9, 0, 0}
	got := MovingAverage(xs, 3)
	want := []float64{0, 3, 3, 3, 0}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("at %d: got %g, want %g", i, got[i], want[i])
		}
	}
}

func TestMovingAverageEdges(t *testing.T) {
	xs := []float64{6, 0, 0}
	got := MovingAverage(xs, 3)
	// At index 0 the window is clamped to [0,1]: mean(6,0)=3.
	if !almostEqual(got[0], 3, 1e-12) {
		t.Errorf("edge value = %g, want 3", got[0])
	}
}

func TestMovingAverageEmpty(t *testing.T) {
	if got := MovingAverage(nil, 5); len(got) != 0 {
		t.Errorf("MovingAverage(nil) returned %v", got)
	}
}

func TestGaussianSmoothNoop(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := GaussianSmooth(xs, 0)
	for i := range xs {
		if got[i] != xs[i] {
			t.Errorf("sigma=0 changed value at %d", i)
		}
	}
}

func TestGaussianSmoothPreservesConstant(t *testing.T) {
	xs := make([]float64, 50)
	for i := range xs {
		xs[i] = 4
	}
	got := GaussianSmooth(xs, 2)
	for i, g := range got {
		if !almostEqual(g, 4, 1e-9) {
			t.Errorf("constant curve changed at %d: %g", i, g)
		}
	}
}

func TestGaussianSmoothSpreadsImpulse(t *testing.T) {
	xs := make([]float64, 21)
	xs[10] = 1
	got := GaussianSmooth(xs, 2)
	if got[10] <= got[8] || got[8] <= got[5] {
		t.Errorf("impulse response not monotone from peak: %v", got)
	}
	if got[10] >= 1 {
		t.Errorf("peak not attenuated: %g", got[10])
	}
}

// Property: a moving average never exceeds the range of its input.
func TestMovingAverageBoundedProperty(t *testing.T) {
	f := func(raw []float64, w uint8) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		window := int(w%16) + 1
		sm := MovingAverage(xs, window)
		lo, hi := Min(xs), Max(xs)
		for _, s := range sm {
			if s < lo-1e-9 || s > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: smoothing preserves the total mass of a non-negative interior
// impulse (Gaussian kernel is normalized away from the edges).
func TestGaussianSmoothMassProperty(t *testing.T) {
	xs := make([]float64, 101)
	xs[50] = 7
	got := GaussianSmooth(xs, 3)
	if !almostEqual(Sum(got), 7, 1e-6) {
		t.Errorf("mass not preserved: sum=%g, want 7", Sum(got))
	}
}
