package text

import (
	"fmt"
	"math"
)

// SimilarityAccumulator computes the message-similarity feature of a window
// incrementally: messages are added one at a time (tokenized exactly once)
// and the running state is enough to produce the window's similarity at any
// moment in O(1). Adding a message costs O(tokens in that message); nothing
// is ever recomputed over the window's earlier messages, and no dense
// vectors are materialized — the accumulator is the sparse, streaming form
// of RawMessageSimilarity / MessageSimilarity and matches them to floating-
// point accuracy (the differential tests pin the agreement at 1e-12).
//
// The algebra: with binary bag-of-words vectors, the one-cluster k-means
// center is c[t] = count[t]/n where count[t] is the number of messages
// containing token t. A message m with distinct-token set T_m then has
//
//	cos(v_m, c) = Σ_{t∈T_m} count[t] / (√|T_m| · √Σ_t count[t]²)
//
// so the window's raw similarity (the mean cosine over all n messages) is
//
//	raw = dotSum / (n · √sumSq)
//	dotSum = Σ_t count[t]·weight[t],  weight[t] = Σ_{m∋t} 1/√|T_m|
//	sumSq  = Σ_t count[t]²
//
// and both dotSum and sumSq admit O(1)-per-token incremental updates when a
// message arrives: for each distinct token of the message, with w = 1/√|T_m|,
//
//	dotSum += count[t]·w + weight[t] + w     (Δ of (count+1)(weight+w))
//	sumSq  += 2·count[t] + 1                 (Δ of (count+1)²)
//
// Empty messages count toward n but contribute nothing else, mirroring the
// zero-vector convention of Cosine.
//
// The zero value is not ready for use; call Reset first (or use
// NewSimilarityAccumulator). Reset reuses all internal buffers, so one
// accumulator serves an unbounded stream of windows without growing memory
// beyond the largest window seen.
type SimilarityAccumulator struct {
	vocab   map[string]int // token → dense id for this window
	counts  []float64      // id → number of messages containing the token
	weights []float64      // id → Σ 1/√|T_m| over messages containing it
	seen    []int          // id → ordinal of the last message containing it
	n       int            // messages added, including empty ones
	dotSum  float64        // Σ_t counts[t]·weights[t], maintained incrementally
	sumSq   float64        // Σ_t counts[t]², maintained incrementally

	distinct []int  // scratch: distinct token ids of the message being added
	tok      []byte // scratch: lowercase bytes of the token being scanned
	msgWords int    // scratch: token count of the message being added
}

// NewSimilarityAccumulator returns a ready-to-use accumulator.
func NewSimilarityAccumulator() *SimilarityAccumulator {
	a := &SimilarityAccumulator{}
	a.Reset()
	return a
}

// Reset clears the accumulator for a fresh window. Internal buffers (the
// vocabulary's buckets, the per-token arrays, the token scratch space) are
// retained, so steady-state per-window cost settles at zero allocations for
// recurring vocabulary.
func (a *SimilarityAccumulator) Reset() {
	if a.vocab == nil {
		a.vocab = make(map[string]int)
	} else {
		clear(a.vocab)
	}
	a.counts = a.counts[:0]
	a.weights = a.weights[:0]
	a.seen = a.seen[:0]
	a.distinct = a.distinct[:0]
	a.n = 0
	a.dotSum = 0
	a.sumSq = 0
}

// Messages returns the number of messages added since the last Reset.
func (a *SimilarityAccumulator) Messages() int { return a.n }

// Add folds one message into the window and returns its word count (the
// total token count, duplicates included — the paper's message-length
// feature), so callers tokenize each message exactly once for both the
// length and similarity features. Steady-state Add performs no allocations:
// only a token never seen in this window interns a new vocabulary string.
func (a *SimilarityAccumulator) Add(message string) (words int) {
	a.n++
	a.msgWords = 0
	a.distinct = a.distinct[:0]
	a.tok = scanTokens(message, a.tok, a)

	if k := len(a.distinct); k > 0 {
		w := 1 / math.Sqrt(float64(k))
		for _, id := range a.distinct {
			c, wt := a.counts[id], a.weights[id]
			a.dotSum += c*w + wt + w
			a.sumSq += 2*c + 1
			a.counts[id] = c + 1
			a.weights[id] = wt + w
		}
	}
	return a.msgWords
}

// token implements tokenSink: one lowercase token of the message being
// added. The byte slice is scratch memory — its contents are only valid for
// the duration of the call.
func (a *SimilarityAccumulator) token(tok []byte) {
	id, ok := a.vocab[string(tok)] // no allocation: compiler-optimized lookup
	if !ok {
		id = len(a.counts)
		a.vocab[string(tok)] = id
		a.counts = append(a.counts, 0)
		a.weights = append(a.weights, 0)
		a.seen = append(a.seen, 0) // message ordinals start at 1
	}
	a.msgWords++
	if a.seen[id] != a.n {
		a.seen[id] = a.n
		a.distinct = append(a.distinct, id)
	}
}

// AccumulatorState is the complete incremental state of a
// SimilarityAccumulator, exported so a mid-window accumulator can be
// checkpointed and reconstructed bit-identically (the durable-session
// machinery snapshots live detectors between messages). Tokens are listed
// in dense-id order; Counts, Weights, and Seen are parallel to it.
type AccumulatorState struct {
	Tokens  []string
	Counts  []float64
	Weights []float64
	Seen    []int
	N       int
	DotSum  float64
	SumSq   float64
}

// State returns a deep copy of the accumulator's incremental state.
func (a *SimilarityAccumulator) State() AccumulatorState {
	st := AccumulatorState{
		Tokens:  make([]string, len(a.counts)),
		Counts:  append([]float64(nil), a.counts...),
		Weights: append([]float64(nil), a.weights...),
		Seen:    append([]int(nil), a.seen...),
		N:       a.n,
		DotSum:  a.dotSum,
		SumSq:   a.sumSq,
	}
	for tok, id := range a.vocab {
		st.Tokens[id] = tok
	}
	return st
}

// SetState restores the accumulator to a previously captured state. The
// restored accumulator continues exactly where the captured one stood: the
// same vocabulary ids, running sums, and per-token ordinals, so subsequent
// Adds produce bit-identical similarity values. Internal buffers are reused
// where capacity allows.
func (a *SimilarityAccumulator) SetState(st AccumulatorState) error {
	k := len(st.Tokens)
	if len(st.Counts) != k || len(st.Weights) != k || len(st.Seen) != k {
		return fmt.Errorf("text: inconsistent accumulator state: %d tokens, %d counts, %d weights, %d seen",
			k, len(st.Counts), len(st.Weights), len(st.Seen))
	}
	if st.N < 0 {
		return fmt.Errorf("text: negative message count %d", st.N)
	}
	a.Reset()
	for id, tok := range st.Tokens {
		if _, dup := a.vocab[tok]; dup {
			return fmt.Errorf("text: duplicate token %q in accumulator state", tok)
		}
		a.vocab[tok] = id
	}
	a.counts = append(a.counts[:0], st.Counts...)
	a.weights = append(a.weights[:0], st.Weights...)
	a.seen = append(a.seen[:0], st.Seen...)
	a.n = st.N
	a.dotSum = st.DotSum
	a.sumSq = st.SumSq
	return nil
}

// Raw returns the window's unnormalized mean cosine-to-centroid and the
// number of messages, matching RawMessageSimilarity over the same messages
// in the same order.
func (a *SimilarityAccumulator) Raw() (sim float64, n int) {
	if a.n < 2 || a.sumSq == 0 {
		return 0, a.n
	}
	return a.dotSum / (math.Sqrt(a.sumSq) * float64(a.n)), a.n
}

// Similarity returns the normalized similarity feature, matching
// MessageSimilarity: the raw mean cosine rescaled against the 1/√n
// orthogonal-messages baseline and clamped at 0.
func (a *SimilarityAccumulator) Similarity() float64 {
	raw, n := a.Raw()
	if n < 2 {
		return 0
	}
	baseline := 1 / math.Sqrt(float64(n))
	adjusted := (raw - baseline) / (1 - baseline)
	if adjusted < 0 {
		return 0
	}
	return adjusted
}
