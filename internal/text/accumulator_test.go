package text_test

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"lightor/internal/text"
)

const simTol = 1e-12

// randomMessage draws a message from a vocabulary mixing ASCII words,
// unicode (CJK, accents), and emoji/emote tokens, with occasional empty and
// punctuation-only messages — the shapes real chat produces.
func randomMessage(rng *rand.Rand) string {
	pool := []string{
		"kill", "gg", "wp", "PogChamp", "lol", "nice", "团战", "すごい",
		"café", "ñoño", "👍", "🔥🔥", "Kreygasm", "clutch", "noooo", "ace",
	}
	switch rng.Intn(10) {
	case 0:
		return ""
	case 1:
		return "?!... ---"
	}
	n := 1 + rng.Intn(8)
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(pool[rng.Intn(len(pool))])
	}
	return b.String()
}

func TestSimilarityAccumulatorMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	acc := text.NewSimilarityAccumulator()
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40) // includes 0- and 1-message windows
		msgs := make([]string, n)
		for i := range msgs {
			msgs[i] = randomMessage(rng)
		}

		acc.Reset()
		var words int
		for _, m := range msgs {
			words += acc.Add(m)
		}

		wantRaw, wantN := text.RawMessageSimilarity(msgs)
		gotRaw, gotN := acc.Raw()
		if gotN != wantN {
			t.Fatalf("trial %d: n = %d, want %d", trial, gotN, wantN)
		}
		if math.Abs(gotRaw-wantRaw) > simTol {
			t.Fatalf("trial %d: raw = %.15f, want %.15f (Δ=%g) over %q",
				trial, gotRaw, wantRaw, gotRaw-wantRaw, msgs)
		}
		if got, want := acc.Similarity(), text.MessageSimilarity(msgs); math.Abs(got-want) > simTol {
			t.Fatalf("trial %d: sim = %.15f, want %.15f over %q", trial, got, want, msgs)
		}

		var wantWords int
		for _, m := range msgs {
			wantWords += text.WordCount(m)
		}
		if words != wantWords {
			t.Fatalf("trial %d: words = %d, want %d", trial, words, wantWords)
		}
	}
}

func TestSimilarityAccumulatorEdgeCases(t *testing.T) {
	acc := text.NewSimilarityAccumulator()

	// Empty window.
	if sim := acc.Similarity(); sim != 0 {
		t.Errorf("empty window sim = %g, want 0", sim)
	}
	// Single message: no notion of agreement.
	acc.Add("hello world")
	if sim := acc.Similarity(); sim != 0 {
		t.Errorf("single-message sim = %g, want 0", sim)
	}
	// Identical messages must normalize to 1.
	acc.Reset()
	for i := 0; i < 5; i++ {
		acc.Add("gg wp PogChamp")
	}
	if sim := acc.Similarity(); math.Abs(sim-1) > simTol {
		t.Errorf("identical-message sim = %.15f, want 1", sim)
	}
	// Token-less messages only: vocabulary stays empty, sim stays 0.
	acc.Reset()
	acc.Add("... ---")
	acc.Add("?!")
	if sim := acc.Similarity(); sim != 0 {
		t.Errorf("token-less window sim = %g, want 0", sim)
	}
	// Duplicate tokens inside one message count once for similarity
	// (binary vectors) but all occurrences count as words.
	acc.Reset()
	if words := acc.Add("gg gg gg"); words != 3 {
		t.Errorf("words = %d, want 3", words)
	}
	acc.Add("gg")
	if sim := acc.Similarity(); math.Abs(sim-1) > simTol {
		t.Errorf("binary-vector sim = %.15f, want 1", sim)
	}
}

// TestSimilarityAccumulatorReuse proves Reset restores the accumulator to a
// bit-identical fresh state: the same messages produce the same values
// whether the accumulator is new or recycled from an unrelated window.
func TestSimilarityAccumulatorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	msgs := make([]string, 25)
	for i := range msgs {
		msgs[i] = randomMessage(rng)
	}

	fresh := text.NewSimilarityAccumulator()
	for _, m := range msgs {
		fresh.Add(m)
	}
	wantRaw, _ := fresh.Raw()

	recycled := text.NewSimilarityAccumulator()
	for i := 0; i < 500; i++ { // pollute with a different window first
		recycled.Add(randomMessage(rng))
	}
	recycled.Reset()
	for _, m := range msgs {
		recycled.Add(m)
	}
	gotRaw, _ := recycled.Raw()
	if gotRaw != wantRaw {
		t.Errorf("recycled raw = %.17g, fresh = %.17g; Reset must restore exact state", gotRaw, wantRaw)
	}
}

func BenchmarkSimilarityAccumulatorAdd(b *testing.B) {
	pool := make([]string, 64)
	rng := rand.New(rand.NewSource(3))
	for i := range pool {
		pool[i] = randomMessage(rng)
	}
	acc := text.NewSimilarityAccumulator()
	for _, m := range pool { // warm the window vocabulary
		acc.Add(m)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc.Add(pool[i%len(pool)])
	}
}
