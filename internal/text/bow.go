package text

import "math"

// BinaryVector encodes a message as a binary bag-of-words vector over a
// vocabulary: component i is 1 if word i occurs in the message. The paper
// uses exactly this representation for the message-similarity feature
// ("We use Bag of Words to represent each message as a binary vector",
// Section IV-C2).
func BinaryVector(vocab *Vocabulary, message string) []float64 {
	vec := make([]float64, vocab.Len())
	for _, tok := range Tokenize(message) {
		if i, ok := vocab.Index(tok); ok {
			vec[i] = 1
		}
	}
	return vec
}

// Vectorize encodes every message against the shared vocabulary.
func Vectorize(vocab *Vocabulary, messages []string) [][]float64 {
	out := make([][]float64, len(messages))
	for i, m := range messages {
		out[i] = BinaryVector(vocab, m)
	}
	return out
}

// Dot returns the dot product of a and b. The slices must be equal length.
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm returns the Euclidean norm of a.
func Norm(a []float64) float64 {
	return math.Sqrt(Dot(a, a))
}

// Cosine returns the cosine similarity of a and b in [-1, 1] (binary
// vectors stay in [0, 1]). Zero vectors have similarity 0 by convention: an
// empty message is not similar to anything.
func Cosine(a, b []float64) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Centroid returns the component-wise mean of the vectors: the center that
// one-cluster k-means converges to in a single step under the Euclidean
// objective. The paper applies "one-cluster K-means to find the center of
// messages" (Section IV-C2).
func Centroid(vectors [][]float64) []float64 {
	if len(vectors) == 0 {
		return nil
	}
	center := make([]float64, len(vectors[0]))
	for _, v := range vectors {
		for i, x := range v {
			center[i] += x
		}
	}
	inv := 1 / float64(len(vectors))
	for i := range center {
		center[i] *= inv
	}
	return center
}

// MessageSimilarity computes the message-similarity feature of a sliding
// window: the average cosine similarity of each message's binary vector to
// the one-cluster k-means center of the window, normalized against the
// small-sample baseline. Windows whose messages chat about the same thing
// (a highlight) score high; random chatter scores low.
//
// The normalization matters: for n mutually-orthogonal messages, the raw
// average cosine-to-centroid is about 1/√n, so a 2-message window of
// unrelated chatter would score ~0.71 while a 40-message hype burst scores
// ~0.6 — inverted. We therefore rescale (raw − 1/√n) / (1 − 1/√n) and clamp
// at 0, which maps "no shared words" to 0 and "identical messages" to 1 at
// every window size. The paper notes the similarity computation "can be
// further enhanced" (Section IV-C2); this is that enhancement.
//
// Windows with fewer than two messages return 0 — there is no notion of
// agreement with nobody to agree with.
func MessageSimilarity(messages []string) float64 {
	raw, n := RawMessageSimilarity(messages)
	if n < 2 {
		return 0
	}
	baseline := 1 / math.Sqrt(float64(n))
	adjusted := (raw - baseline) / (1 - baseline)
	if adjusted < 0 {
		return 0
	}
	return adjusted
}

// RawMessageSimilarity returns the unnormalized average cosine similarity
// of each message to the one-cluster k-means center, plus the number of
// messages considered. This is the paper's literal formulation; prefer
// MessageSimilarity for feature extraction.
func RawMessageSimilarity(messages []string) (sim float64, n int) {
	if len(messages) < 2 {
		return 0, len(messages)
	}
	vocab := BuildVocabulary(messages)
	if vocab.Len() == 0 {
		return 0, len(messages)
	}
	vectors := Vectorize(vocab, messages)
	center := Centroid(vectors)
	var sum float64
	for _, v := range vectors {
		sum += Cosine(v, center)
	}
	return sum / float64(len(vectors)), len(vectors)
}
