package text

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBinaryVector(t *testing.T) {
	vocab := BuildVocabulary([]string{"nice kill wow"})
	vec := BinaryVector(vocab, "kill kill nice")
	want := []float64{1, 1, 0} // nice, kill present; wow absent
	for i := range want {
		if vec[i] != want[i] {
			t.Errorf("vec[%d] = %g, want %g", i, vec[i], want[i])
		}
	}
}

func TestBinaryVectorUnknownWordsIgnored(t *testing.T) {
	vocab := BuildVocabulary([]string{"alpha"})
	vec := BinaryVector(vocab, "beta gamma")
	if vec[0] != 0 {
		t.Errorf("unknown words contaminated vector: %v", vec)
	}
}

func TestDotAndNorm(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if got := Norm([]float64{3, 4}); got != 5 {
		t.Errorf("Norm = %g, want 5", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); got != 1 {
		t.Errorf("identical cosine = %g, want 1", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Errorf("orthogonal cosine = %g, want 0", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %g, want 0", got)
	}
}

func TestCentroid(t *testing.T) {
	c := Centroid([][]float64{{1, 0}, {0, 1}})
	if c[0] != 0.5 || c[1] != 0.5 {
		t.Errorf("Centroid = %v, want [0.5 0.5]", c)
	}
	if got := Centroid(nil); got != nil {
		t.Errorf("Centroid(nil) = %v, want nil", got)
	}
}

func TestMessageSimilarityIdenticalMessages(t *testing.T) {
	sim := MessageSimilarity([]string{"nice kill", "nice kill", "nice kill"})
	if !almostEqual(sim, 1, 1e-12) {
		t.Errorf("identical messages similarity = %g, want 1", sim)
	}
}

func TestMessageSimilarityOrdering(t *testing.T) {
	// Excited, overlapping messages should score higher than disjoint chatter.
	excited := MessageSimilarity([]string{"kill", "kill wow", "kill nice", "wow kill"})
	random := MessageSimilarity([]string{
		"anyone know a good pizza place",
		"my internet keeps dropping",
		"what patch is this",
		"lol streamer sounds tired today",
	})
	if excited <= random {
		t.Errorf("excited=%g should exceed random=%g", excited, random)
	}
}

func TestMessageSimilarityDegenerateInputs(t *testing.T) {
	if got := MessageSimilarity(nil); got != 0 {
		t.Errorf("similarity of no messages = %g, want 0", got)
	}
	if got := MessageSimilarity([]string{"solo"}); got != 0 {
		t.Errorf("similarity of one message = %g, want 0", got)
	}
	if got := MessageSimilarity([]string{"!!!", "???"}); got != 0 {
		t.Errorf("similarity of empty-token messages = %g, want 0", got)
	}
}

func TestMessageSimilaritySizeNormalization(t *testing.T) {
	// Two completely unrelated messages must score 0 after normalization,
	// even though their raw cosine-to-centroid is ~0.71.
	disjoint := []string{"alpha beta", "gamma delta"}
	if got := MessageSimilarity(disjoint); got != 0 {
		t.Errorf("disjoint messages similarity = %g, want 0", got)
	}
	raw, n := RawMessageSimilarity(disjoint)
	if n != 2 {
		t.Fatalf("n = %d, want 2", n)
	}
	if raw < 0.6 || raw > 0.8 {
		t.Errorf("raw similarity of orthogonal pair = %g, want ~0.71", raw)
	}
}

func TestMessageSimilarityNotSizeConfounded(t *testing.T) {
	// A large hype burst must outscore a tiny unrelated window; the raw
	// metric gets this backwards, the normalized one must not.
	burst := make([]string, 40)
	for i := range burst {
		if i%2 == 0 {
			burst[i] = "kill wow"
		} else {
			burst[i] = "kill nice"
		}
	}
	small := []string{"pizza tonight", "internet lagging"}
	if MessageSimilarity(burst) <= MessageSimilarity(small) {
		t.Errorf("burst (%g) should outscore unrelated pair (%g)",
			MessageSimilarity(burst), MessageSimilarity(small))
	}
}

// Property: cosine similarity of binary vectors is within [0, 1].
func TestCosineRangeProperty(t *testing.T) {
	f := func(bitsA, bitsB []bool) bool {
		n := len(bitsA)
		if len(bitsB) < n {
			n = len(bitsB)
		}
		if n == 0 {
			return true
		}
		a := make([]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			if bitsA[i] {
				a[i] = 1
			}
			if bitsB[i] {
				b[i] = 1
			}
		}
		c := Cosine(a, b)
		return c >= 0 && c <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: MessageSimilarity stays within [0, 1] for arbitrary strings.
func TestMessageSimilarityRangeProperty(t *testing.T) {
	f := func(msgs []string) bool {
		s := MessageSimilarity(msgs)
		return s >= 0 && s <= 1+1e-12 && !math.IsNaN(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}
