package text_test

import (
	"fmt"

	"lightor/internal/text"
)

// Hype bursts converge on a topic; casual chatter does not. The similarity
// feature quantifies the difference, normalized so window size cannot fake
// agreement.
func ExampleMessageSimilarity() {
	hype := text.MessageSimilarity([]string{"kill kill", "kill wow", "wow kill", "kill"})
	casual := text.MessageSimilarity([]string{
		"anyone know what patch this is",
		"my internet keeps dropping today",
		"who wins this series",
		"hello from europe",
	})
	fmt.Println(hype > 3*casual)
	// Output: true
}

// Tokenize lowercases and keeps emote-like tokens — excited viewers spam
// exactly those.
func ExampleTokenize() {
	fmt.Println(text.Tokenize("PogChamp!!! 👍 Nice KILL"))
	// Output: [pogchamp 👍 nice kill]
}
