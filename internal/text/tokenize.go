// Package text implements the lightweight text processing the Highlight
// Initializer needs: tokenization, bag-of-words vectors, cosine similarity,
// and the one-cluster k-means centroid used to compute the message-similarity
// feature (Section IV-C2 of the LIGHTOR paper).
//
// Two implementations of the similarity feature coexist deliberately:
//
//   - RawMessageSimilarity / MessageSimilarity build the dense vocabulary and
//     bag-of-words vectors from scratch — the paper's literal formulation,
//     kept as the reference the differential tests check against;
//   - SimilarityAccumulator maintains the same quantity incrementally and
//     sparsely as messages stream in, tokenizing each message exactly once
//     and allocating nothing in steady state. This is the form the hot
//     per-message Feed path uses; core.FeatureAccumulator builds on it.
package text

import (
	"unicode"
	"unicode/utf8"
)

// isTokenRune reports whether r belongs inside a token. Tokens are maximal
// runs of letters, digits, or symbol runes; this keeps emoji and emote codes
// (e.g. "PogChamp", "👍") as tokens, which matters because excited viewers
// spam exactly those.
func isTokenRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || unicode.IsSymbol(r)
}

// tokenSink receives each token of a scan. The byte slice is scratch memory
// reused between tokens: implementations must copy it if they retain it.
type tokenSink interface {
	token(tok []byte)
}

// scanTokens splits s into lowercase tokens, invoking sink.token for each.
// buf is the reusable scratch buffer for token bytes; the (possibly grown)
// buffer is returned so callers can keep it for the next scan. This is the
// single tokenization loop behind Tokenize, WordCount, and the streaming
// SimilarityAccumulator, so every consumer agrees byte-for-byte on token
// boundaries and case folding.
func scanTokens(s string, buf []byte, sink tokenSink) []byte {
	buf = buf[:0]
	for _, r := range s {
		if isTokenRune(r) {
			buf = utf8.AppendRune(buf, unicode.ToLower(r))
			continue
		}
		if len(buf) > 0 {
			sink.token(buf)
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		sink.token(buf)
	}
	return buf
}

// sliceSink collects tokens as freshly allocated strings.
type sliceSink struct{ tokens []string }

func (s *sliceSink) token(tok []byte) { s.tokens = append(s.tokens, string(tok)) }

// countSink counts tokens without materializing them.
type countSink struct{ n int }

func (s *countSink) token([]byte) { s.n++ }

// Tokenize splits a chat message into lowercase word tokens (see
// isTokenRune for the token alphabet).
func Tokenize(s string) []string {
	var sink sliceSink
	scanTokens(s, nil, &sink)
	return sink.tokens
}

// WordCount returns the number of word tokens in a message. The paper
// defines message length as "the number of words in the message"
// (Section IV-C2). It counts without allocating token strings.
func WordCount(s string) int {
	var sink countSink
	scanTokens(s, nil, &sink)
	return sink.n
}

// Vocabulary maps tokens to dense indices. A fresh vocabulary is built per
// sliding window: message similarity only compares messages inside the same
// window, so vocabularies never need to be shared or persisted.
type Vocabulary struct {
	index map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// Add inserts a token if absent and returns its index.
func (v *Vocabulary) Add(token string) int {
	if i, ok := v.index[token]; ok {
		return i
	}
	i := len(v.words)
	v.index[token] = i
	v.words = append(v.words, token)
	return i
}

// Index returns the index for token and whether it is present.
func (v *Vocabulary) Index(token string) (int, bool) {
	i, ok := v.index[token]
	return i, ok
}

// Word returns the token at index i.
func (v *Vocabulary) Word(i int) string { return v.words[i] }

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.words) }

// BuildVocabulary tokenizes every message and returns the vocabulary over
// all tokens seen.
func BuildVocabulary(messages []string) *Vocabulary {
	v := NewVocabulary()
	for _, m := range messages {
		for _, tok := range Tokenize(m) {
			v.Add(tok)
		}
	}
	return v
}
