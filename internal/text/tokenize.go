// Package text implements the lightweight text processing the Highlight
// Initializer needs: tokenization, bag-of-words vectors, cosine similarity,
// and the one-cluster k-means centroid used to compute the message-similarity
// feature (Section IV-C2 of the LIGHTOR paper).
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits a chat message into lowercase word tokens. Tokens are
// maximal runs of letters, digits, or symbol runes; this keeps emoji and
// emote codes (e.g. "PogChamp", "👍") as tokens, which matters because
// excited viewers spam exactly those.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, strings.ToLower(b.String()))
			b.Reset()
		}
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) || unicode.IsSymbol(r) {
			b.WriteRune(r)
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

// WordCount returns the number of word tokens in a message. The paper
// defines message length as "the number of words in the message"
// (Section IV-C2).
func WordCount(s string) int {
	return len(Tokenize(s))
}

// Vocabulary maps tokens to dense indices. A fresh vocabulary is built per
// sliding window: message similarity only compares messages inside the same
// window, so vocabularies never need to be shared or persisted.
type Vocabulary struct {
	index map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{index: make(map[string]int)}
}

// Add inserts a token if absent and returns its index.
func (v *Vocabulary) Add(token string) int {
	if i, ok := v.index[token]; ok {
		return i
	}
	i := len(v.words)
	v.index[token] = i
	v.words = append(v.words, token)
	return i
}

// Index returns the index for token and whether it is present.
func (v *Vocabulary) Index(token string) (int, bool) {
	i, ok := v.index[token]
	return i, ok
}

// Word returns the token at index i.
func (v *Vocabulary) Word(i int) string { return v.words[i] }

// Len returns the vocabulary size.
func (v *Vocabulary) Len() int { return len(v.words) }

// BuildVocabulary tokenizes every message and returns the vocabulary over
// all tokens seen.
func BuildVocabulary(messages []string) *Vocabulary {
	v := NewVocabulary()
	for _, m := range messages {
		for _, tok := range Tokenize(m) {
			v.Add(tok)
		}
	}
	return v
}
