package text

import (
	"reflect"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want []string
	}{
		{"simple", "Nice kill", []string{"nice", "kill"}},
		{"punctuation", "wow!!! that, was... great", []string{"wow", "that", "was", "great"}},
		{"empty", "", nil},
		{"spaces", "   ", nil},
		{"digits", "gg 100 times", []string{"gg", "100", "times"}},
		{"case-folding", "PogChamp KILL", []string{"pogchamp", "kill"}},
		{"emoji", "👍 😄 nice", []string{"👍", "😄", "nice"}},
		{"mixed-unicode", "日本語 chat", []string{"日本語", "chat"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
				t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
			}
		})
	}
}

func TestWordCount(t *testing.T) {
	if got := WordCount("three word message"); got != 3 {
		t.Errorf("WordCount = %d, want 3", got)
	}
	if got := WordCount(""); got != 0 {
		t.Errorf("WordCount empty = %d, want 0", got)
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary()
	i := v.Add("kill")
	j := v.Add("nice")
	if i != 0 || j != 1 {
		t.Errorf("Add returned (%d,%d), want (0,1)", i, j)
	}
	if again := v.Add("kill"); again != 0 {
		t.Errorf("duplicate Add returned %d, want 0", again)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d, want 2", v.Len())
	}
	if idx, ok := v.Index("nice"); !ok || idx != 1 {
		t.Errorf("Index(nice) = (%d,%v)", idx, ok)
	}
	if _, ok := v.Index("missing"); ok {
		t.Error("Index found missing word")
	}
	if v.Word(0) != "kill" {
		t.Errorf("Word(0) = %q", v.Word(0))
	}
}

func TestBuildVocabulary(t *testing.T) {
	v := BuildVocabulary([]string{"nice kill", "kill kill wow"})
	if v.Len() != 3 {
		t.Errorf("vocab size = %d, want 3 (nice, kill, wow)", v.Len())
	}
}
