package wal

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"lightor/internal/fault"
)

// replayAll reopens the log at path with a collecting apply func and
// returns the replayed payloads.
func replayAll(t *testing.T, path string) []string {
	t.Helper()
	var got []string
	w, _, err := Open(path, Options{NoSync: true}, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close reopened writer: %v", err)
	}
	return got
}

// TestFsyncFailurePoisonsWriter is the fail-stop contract test: a record
// whose group-commit fsync fails is never acknowledged durable, the writer
// stays poisoned (no later append, sync, or close can succeed — and in
// particular no retried fsync ever produces an ack), and every record that
// WAS acknowledged before the fault survives recovery.
func TestFsyncFailurePoisonsWriter(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Create(path, Options{NoSync: true, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	// Two acked records, each its own group commit.
	if err := w.AppendDurable([]byte("r1")); err != nil {
		t.Fatalf("r1: %v", err)
	}
	if err := w.AppendDurable([]byte("r2")); err != nil {
		t.Fatalf("r2: %v", err)
	}

	// Third commit's fsync fails.
	if err := fault.Arm(FailpointSync, "err:disk gone"); err != nil {
		t.Fatal(err)
	}
	err = w.AppendDurable([]byte("r3"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("r3 acked through a failed fsync: err=%v", err)
	}

	// Writer is poisoned: appends fail fast with the original error, even
	// after the "disk" heals (failpoint disarmed).
	fault.DisarmAll()
	if _, err := w.Append([]byte("r4")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append to poisoned writer: err=%v", err)
	}
	if err := w.Err(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Err() = %v, want sticky injected error", err)
	}
	if err := w.Sync(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Sync on poisoned writer: err=%v", err)
	}
	// WaitDurable for the failed record keeps reporting the failure.
	if err := w.WaitDurable(3); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("WaitDurable(3) = %v", err)
	}
	if err := w.Close(); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Close on poisoned writer: err=%v", err)
	}

	// Recovery: every acked record is there. r3 (flushed, never fsynced,
	// never acked) may or may not survive the "crash" — both are legal,
	// which is exactly why its ack never went out.
	got := replayAll(t, path)
	if len(got) < 2 || got[0] != "r1" || got[1] != "r2" {
		t.Fatalf("replayed %q, want acked prefix [r1 r2]", got)
	}
	if len(got) > 3 || (len(got) == 3 && got[2] != "r3") {
		t.Fatalf("replayed %q, want at most [r1 r2 r3]", got)
	}
}

// TestTornWriteRecoveryReplaysOnlyAckedRecords: a partial (torn) device
// write poisons the writer and recovery replays exactly the acknowledged
// records — the torn record is truncated away.
func TestTornWriteRecoveryReplaysOnlyAckedRecords(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Create(path, Options{NoSync: true, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}

	if err := w.AppendDurable([]byte("r1")); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDurable([]byte("r2")); err != nil {
		t.Fatal(err)
	}

	// The third record tears 5 bytes in: frame written, payload lost.
	if err := fault.Arm(FailpointWrite, "partial:5"); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDurable([]byte("r3-never-acked")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append acked: err=%v", err)
	}
	fault.DisarmAll()
	if _, err := w.Append([]byte("r4")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append to poisoned writer: err=%v", err)
	}
	_ = w.Close()

	got := replayAll(t, path)
	if len(got) != 2 || got[0] != "r1" || got[1] != "r2" {
		t.Fatalf("replayed %q, want exactly the acked records [r1 r2]", got)
	}
}

// TestTornBatchWritePoisons: the batch path honors the same contract.
func TestTornBatchWritePoisons(t *testing.T) {
	t.Cleanup(fault.DisarmAll)
	path := filepath.Join(t.TempDir(), "log.wal")
	w, err := Create(path, Options{NoSync: true, SyncInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendBatchDurable([][]byte{[]byte("a1"), []byte("a2")}); err != nil {
		t.Fatal(err)
	}
	// Tear mid-batch: the first record of the batch fits, the second tears.
	if err := fault.Arm(FailpointWrite, fmt.Sprintf("partial:%d", frameSize+2+frameSize)); err != nil {
		t.Fatal(err)
	}
	err = w.AppendBatchDurable([][]byte{[]byte("b1"), []byte("b2")})
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn batch acked: err=%v", err)
	}
	fault.DisarmAll()
	if _, err := w.AppendBatch([][]byte{[]byte("c1")}); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("batch append to poisoned writer: err=%v", err)
	}
	_ = w.Close()

	// b1 reached the file intact but was never acked (the batch ack is
	// all-or-nothing); b2 is a torn frame and must not replay.
	got := replayAll(t, path)
	if len(got) < 2 || got[0] != "a1" || got[1] != "a2" {
		t.Fatalf("replayed %q, want acked prefix [a1 a2]", got)
	}
	for _, p := range got {
		if p == "b2" {
			t.Fatalf("torn record b2 replayed: %q", got)
		}
	}
}
