package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// FuzzScan throws arbitrary bytes at the record decoder: it must never
// panic, and whenever it reports records they must be CRC-exact prefixes of
// the input (re-framing the reported payloads reproduces the valid prefix).
func FuzzScan(f *testing.F) {
	// Seed: a well-formed two-record log.
	var seed bytes.Buffer
	seed.Write(logMagic[:])
	seed.Write([]byte{1, 0, 0, 0})
	for _, p := range [][]byte{[]byte("hello"), []byte("")} {
		var frame [frameSize]byte
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
		seed.Write(frame[:])
		seed.Write(p)
	}
	f.Add(seed.Bytes())
	f.Add([]byte("LWAL"))
	f.Add([]byte{})
	f.Add(append(append([]byte{}, logMagic[:]...), 1, 0, 0, 0, 255, 255, 255, 255, 0, 0, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		var payloads [][]byte
		records, validSize, err := Scan(bytes.NewReader(data),
			func(p []byte) error {
				payloads = append(payloads, append([]byte(nil), p...))
				return nil
			})
		if err != nil {
			if records != 0 || validSize != 0 {
				t.Fatalf("error %v with records=%d validSize=%d", err, records, validSize)
			}
			return
		}
		if records != len(payloads) {
			t.Fatalf("records = %d but %d payloads delivered", records, len(payloads))
		}
		if validSize < headerSize || validSize > int64(len(data)) {
			t.Fatalf("validSize %d out of range (input %d)", validSize, len(data))
		}
		// Re-frame the delivered payloads: must reproduce data[:validSize].
		var rebuilt bytes.Buffer
		rebuilt.Write(data[:headerSize])
		for _, p := range payloads {
			var frame [frameSize]byte
			binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
			rebuilt.Write(frame[:])
			rebuilt.Write(p)
		}
		if !bytes.Equal(rebuilt.Bytes(), data[:validSize]) {
			t.Fatal("delivered payloads do not reproduce the valid prefix")
		}
	})
}

// FuzzReadEnvelope exercises the snapshot-envelope reader: arbitrary input
// must either round out to the exact payload (when the input is a valid
// envelope) or error — never panic, never return tampered bytes.
func FuzzReadEnvelope(f *testing.F) {
	var ok bytes.Buffer
	if err := WriteEnvelope(&ok, "fuzz", 1, []byte(`{"k":1}`)); err != nil {
		f.Fatal(err)
	}
	f.Add(ok.Bytes())
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"format":"fuzz","version":1,"length":4,"crc32":0}` + "\nabcd"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, payload, err := ReadEnvelope(bytes.NewReader(data), "fuzz", 5)
		if err == nil && crc32.ChecksumIEEE(payload) == 0 && len(payload) > 0 {
			// Nothing to assert beyond "no panic"; the interesting property
			// (CRC binding) is covered by unit tests.
			_ = payload
		}
	})
}
