// Package wal provides the durable-persistence primitives behind the
// platform's file-backed storage: an append-only write-ahead log with
// length-prefixed, CRC32-checksummed records and partial-tail-tolerant
// recovery, plus checksummed snapshot envelopes for full-state files.
//
// The paper's deployment (Section VI) accumulates chat logs, red dots, and
// browser-extension interaction logs server-side so implicit crowdsourcing
// can keep refining highlights long after a broadcast ends. That state must
// outlive any single process, and the crowd signal arrives as a stream of
// small appends — exactly the workload a WAL absorbs: every accepted
// mutation is appended (and group-commit fsynced) before it is acknowledged,
// and a periodic snapshot bounds replay time at restart.
//
// # Log format
//
// A log file starts with an 8-byte header:
//
//	magic "LWAL" | version uint16 LE | flags uint16 LE (reserved, zero)
//
// followed by zero or more records, each framed as
//
//	length uint32 LE | crc32 uint32 LE (IEEE, over the payload) | payload
//
// Recovery reads records until the first frame that does not check out —
// a short header, a length past EOF, or a CRC mismatch. Everything before
// that point is intact (CRC-verified); everything from it on is a torn tail
// from a crash mid-write and is truncated away when the writer reopens the
// file. A corrupt byte in the middle of the file therefore costs the
// records behind it — the same contract as etcd's WAL — which the snapshot
// cadence keeps small.
//
// # Durability
//
// Writer.Append buffers; Writer.AppendDurable additionally waits until the
// record has been fsynced. Syncs are group-committed: one background
// flusher serves every waiter that arrived while the previous fsync was in
// flight, so durable-append throughput scales with batching instead of
// paying one fsync per record.
//
// # Batching contract
//
// Writer.AppendBatch (and AppendBatchDurable) appends N payloads as N
// ordinary records: each gets its own length+CRC frame, staged into one
// reused buffer and handed to the buffered writer in a single call, with
// the whole batch covered by one group-commit wait. On disk a batch is
// byte-identical to the same payloads appended one at a time — Scan and
// recovery never see batch boundaries, so replay of a batched log equals
// replay of a sequential one bit for bit. Torn-tail semantics are
// unchanged: a crash mid-batch loses a suffix of the batch's records
// exactly as it would for sequential appends (callers that need
// all-or-nothing batches must encode the batch as one record).
//
// # Fail-stop contract
//
// The writer is fail-stop: the first failed write, flush, or fsync poisons
// it permanently. A poisoned writer rejects further appends, never flushes
// or fsyncs again, and fails every durability waiter with the original
// error. In particular it never retries a failed fsync and then
// acknowledges — after a failed fsync the kernel may have already dropped
// the dirty pages, so a successful retry proves nothing about the data
// ("fsyncgate"). Recovery is restart-shaped: reopen the log and replay;
// only records whose group commit succeeded are guaranteed present, and a
// record that was buffered or flushed but never fsynced may or may not
// survive — which is exactly why its ack never went out.
package wal

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"time"

	"lightor/internal/fault"
)

// Failpoint sites (package fault) wired into the write path. Disarmed they
// cost one atomic load per append / group commit.
var (
	// FailpointWrite fires in Append/AppendBatch as the framed record is
	// handed to the device; a partial:<n> action tears the record so
	// recovery sees a torn tail.
	FailpointWrite = fault.Register("wal/write")
	// FailpointSync fires in the group-commit flusher in place of fsync
	// (it fires even under NoSync, so tests need no real disk stall).
	FailpointSync = fault.Register("wal/sync")
)

const (
	// Version is the current log-format version written to new files.
	Version = 1

	headerSize = 8
	frameSize  = 8 // length + crc
	// MaxRecord caps a single record's payload. A length field beyond it
	// is treated as torn-tail garbage rather than an instruction to
	// allocate gigabytes.
	MaxRecord = 64 << 20
	// MaxEnvelope caps a snapshot envelope's payload. Enforced
	// symmetrically by WriteEnvelope and ReadEnvelope, so a snapshot that
	// was written can always be read back — a writer that lets state grow
	// past the cap fails loudly at write time (when the old snapshot is
	// still intact), never at recovery time.
	MaxEnvelope = 1 << 30
)

var logMagic = [4]byte{'L', 'W', 'A', 'L'}

// ErrCorrupt reports a structurally invalid log or envelope: bad magic,
// unsupported version, or checksum mismatch where tolerance is not allowed.
var ErrCorrupt = errors.New("wal: corrupt data")

// Options tunes a Writer.
type Options struct {
	// SyncInterval is the group-commit window: after the first durable
	// append of a batch, the flusher waits this long for stragglers before
	// issuing one fsync for all of them. Zero means 2ms.
	SyncInterval time.Duration
	// NoSync disables fsync entirely (tests and benchmarks that measure
	// CPU cost, not disk cost). AppendDurable still waits for the buffered
	// writer to flush to the OS.
	NoSync bool
}

func (o *Options) fillDefaults() {
	if o.SyncInterval <= 0 {
		o.SyncInterval = 2 * time.Millisecond
	}
}

// Scan reads log records from r (which must start at the file header),
// calling apply for each intact payload. The payload slice is reused
// between calls; apply must copy anything it keeps.
//
// Scan returns the number of intact records and the byte offset of the end
// of the last intact record — the offset a writer should truncate to before
// appending. A torn tail (short frame, impossible length, payload cut off,
// or CRC mismatch) ends the scan without error: that is the expected state
// after a crash mid-append. A missing or foreign header, an unsupported
// version, or an apply error is a real error.
func Scan(r io.Reader, apply func(payload []byte) error) (records int, validSize int64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF {
			return 0, 0, fmt.Errorf("%w: empty log (missing header)", ErrCorrupt)
		}
		return 0, 0, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if !bytes.Equal(hdr[:4], logMagic[:]) {
		return 0, 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != Version {
		return 0, 0, fmt.Errorf("%w: unsupported log version %d", ErrCorrupt, v)
	}

	validSize = headerSize
	var frame [frameSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return records, validSize, nil // clean EOF or torn frame: tail
		}
		length := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if length > MaxRecord {
			return records, validSize, nil // garbage length: torn tail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(br, payload); err != nil {
			return records, validSize, nil // payload cut off: torn tail
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, validSize, nil // bit rot or torn write: tail
		}
		if err := apply(payload); err != nil {
			return records, validSize, fmt.Errorf("wal: applying record %d: %w", records, err)
		}
		records++
		validSize += frameSize + int64(length)
	}
}

// ScanFile opens path and Scans it. A missing file is not an error: it
// reports zero records, mirroring a log that was never written.
func ScanFile(path string, apply func(payload []byte) error) (records int, validSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	return Scan(f, apply)
}

// Writer appends framed records to a log file with group-commit fsync.
type Writer struct {
	mu        sync.Mutex // guards f, bw, seq, err, batchBuf
	f         *os.File
	bw        *bufio.Writer
	frame     [frameSize]byte
	batchBuf  []byte // reused frame+payload staging for AppendBatch
	seq       uint64 // records appended (buffered, not necessarily synced)
	err       error  // first write error; sticky
	closed    bool
	noSync    bool
	interval  time.Duration
	cmu       sync.Mutex
	committed uint64 // records known durable; guarded by cmu
	syncErr   error  // first flush/sync failure; guarded by cmu
	cond      *sync.Cond
	wake      chan struct{} // buffered(1): nudges the flusher
	quit      chan struct{}
	stopped   chan struct{}
}

// Open opens the log at path for appending, creating it (with a fresh
// header) when absent. An existing file is first Scanned through apply —
// the caller replays its state — and truncated to the last intact record so
// a torn tail from a crash never precedes new appends.
//
// A file too short to hold even the header (a crash during log creation —
// e.g. power loss right after a snapshot compaction created the next
// generation's file) is indistinguishable from "never written" and is
// treated as a fresh log, not corruption; it cannot contain acknowledged
// records. A present-but-foreign header (bad magic, unsupported version)
// stays a hard error.
func Open(path string, opts Options, apply func(payload []byte) error) (*Writer, int, error) {
	opts.fillDefaults()
	records := 0
	validSize := int64(0)
	if st, err := os.Stat(path); err == nil {
		if st.Size() >= headerSize {
			r, v, err := ScanFile(path, apply)
			if err != nil {
				return nil, 0, err
			}
			records, validSize = r, v
		}
	} else if !os.IsNotExist(err) {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, 0, fmt.Errorf("wal: %w", err)
	}
	if validSize == 0 {
		// Fresh (or completely torn) log: write a clean header.
		var hdr [headerSize]byte
		copy(hdr[:4], logMagic[:])
		binary.LittleEndian.PutUint16(hdr[4:6], Version)
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("wal: %w", err)
		}
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("wal: writing header: %w", err)
		}
		// The header must be durable before anything (such as a snapshot
		// naming this generation) depends on the file being openable.
		if !opts.NoSync {
			if err := f.Sync(); err != nil {
				f.Close()
				return nil, 0, fmt.Errorf("wal: syncing header: %w", err)
			}
		}
		validSize = headerSize
	} else if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, fmt.Errorf("wal: %w", err)
	}

	w := &Writer{
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		noSync:   opts.NoSync,
		interval: opts.SyncInterval,
		wake:     make(chan struct{}, 1),
		quit:     make(chan struct{}),
		stopped:  make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.cmu)
	go w.flushLoop()
	return w, records, nil
}

// Create makes a fresh log at path, failing if one already exists.
func Create(path string, opts Options) (*Writer, error) {
	if _, err := os.Stat(path); err == nil {
		return nil, fmt.Errorf("wal: %s already exists", path)
	}
	w, _, err := Open(path, opts, func([]byte) error { return nil })
	return w, err
}

// Append buffers one record and returns its sequence number. The record is
// durable only after the next group commit (or Sync/Close); pass the
// sequence to WaitDurable — or use AppendDurable — when the caller
// acknowledges the write to a client.
func (w *Writer) Append(payload []byte) (uint64, error) {
	seq, err := w.append(payload)
	w.nudge()
	return seq, err
}

// WaitDurable blocks until the record with the given sequence number has
// been fsynced (group-committed with any concurrent appends), or until the
// writer fails or closes.
func (w *Writer) WaitDurable(seq uint64) error {
	w.nudge()
	w.cmu.Lock()
	defer w.cmu.Unlock()
	for w.committed < seq && w.syncErr == nil {
		w.cond.Wait()
	}
	return w.syncErr
}

// AppendDurable appends one record and blocks until it has been fsynced
// (group-committed with any concurrent appends).
func (w *Writer) AppendDurable(payload []byte) error {
	seq, err := w.append(payload)
	if err != nil {
		return err
	}
	return w.WaitDurable(seq)
}

// AppendBatch appends every payload as its own record — framed identically
// to N sequential Append calls, so readers cannot tell the difference —
// but stages all frames into one reused buffer and issues a single
// buffered write. The whole batch therefore pays one lock acquisition and
// one writer hand-off instead of N. It returns the sequence number of the
// batch's LAST record; pass it to WaitDurable to make the entire batch
// durable with one group-commit wait (or use AppendBatchDurable).
//
// The batch is all-or-nothing at the framing level: an oversized payload
// fails the call before any byte of the batch reaches the log.
func (w *Writer) AppendBatch(payloads [][]byte) (uint64, error) {
	seq, err := w.appendBatch(payloads)
	w.nudge()
	return seq, err
}

// AppendBatchDurable appends the batch and blocks until all of it has been
// fsynced — one durability wait for the burst.
func (w *Writer) AppendBatchDurable(payloads [][]byte) error {
	seq, err := w.appendBatch(payloads)
	if err != nil {
		return err
	}
	if len(payloads) == 0 {
		return nil
	}
	return w.WaitDurable(seq)
}

// batchBufRetain caps the staging buffer kept across batches: a one-off
// giant batch must not pin its buffer on the writer forever.
const batchBufRetain = 1 << 20

func (w *Writer) appendBatch(payloads [][]byte) (uint64, error) {
	total := 0
	for _, p := range payloads {
		if len(p) > MaxRecord {
			return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(p))
		}
		total += frameSize + len(p)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: writer closed")
	}
	if w.err != nil {
		return 0, w.err
	}
	if len(payloads) == 0 {
		return w.seq, nil
	}
	if cap(w.batchBuf) < total {
		w.batchBuf = make([]byte, 0, total)
	}
	buf := w.batchBuf[:0]
	for _, p := range payloads {
		var frame [frameSize]byte
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(p))
		buf = append(buf, frame[:]...)
		buf = append(buf, p...)
	}
	if cap(buf) <= batchBufRetain {
		w.batchBuf = buf
	} else {
		w.batchBuf = nil
	}
	if fault.Enabled() {
		if allowed, ferr := fault.WriteLimit(FailpointWrite, len(buf)); ferr != nil {
			w.poisonTornLocked(nil, buf, allowed, ferr)
			return 0, w.err
		}
	}
	if _, err := w.bw.Write(buf); err != nil {
		w.err = fmt.Errorf("wal: write failed (writer poisoned): %w", err)
		return 0, w.err
	}
	w.seq += uint64(len(payloads))
	return w.seq, nil
}

func (w *Writer) append(payload []byte) (uint64, error) {
	if len(payload) > MaxRecord {
		return 0, fmt.Errorf("wal: record of %d bytes exceeds MaxRecord", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, errors.New("wal: writer closed")
	}
	if w.err != nil {
		return 0, w.err
	}
	binary.LittleEndian.PutUint32(w.frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.frame[4:8], crc32.ChecksumIEEE(payload))
	if fault.Enabled() {
		if allowed, ferr := fault.WriteLimit(FailpointWrite, frameSize+len(payload)); ferr != nil {
			w.poisonTornLocked(w.frame[:], payload, allowed, ferr)
			return 0, w.err
		}
	}
	if _, err := w.bw.Write(w.frame[:]); err != nil {
		w.err = fmt.Errorf("wal: write failed (writer poisoned): %w", err)
		return 0, w.err
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = fmt.Errorf("wal: write failed (writer poisoned): %w", err)
		return 0, w.err
	}
	w.seq++
	return w.seq, nil
}

// poisonTornLocked emulates a failing device under an armed write
// failpoint: the first `allowed` bytes of the framed record reach the file
// (flushed, so a subsequent recovery scan sees a realistic torn tail), then
// the writer poisons itself with the injected error. Caller holds w.mu.
func (w *Writer) poisonTornLocked(frame, payload []byte, allowed int, cause error) {
	full := make([]byte, 0, len(frame)+len(payload))
	full = append(full, frame...)
	full = append(full, payload...)
	if allowed > len(full) {
		allowed = len(full)
	}
	if allowed > 0 {
		w.bw.Write(full[:allowed])
	}
	w.bw.Flush()
	w.err = fmt.Errorf("wal: write failed (writer poisoned): %w", cause)
}

// nudge wakes the flusher without blocking (one pending wake suffices).
func (w *Writer) nudge() {
	select {
	case w.wake <- struct{}{}:
	default:
	}
}

// flushLoop is the group-commit flusher: each wake-up waits one sync
// interval for more appends to batch, then flushes and fsyncs once for all
// of them.
func (w *Writer) flushLoop() {
	defer close(w.stopped)
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-w.quit:
			return
		case <-w.wake:
		}
		if w.interval > 0 {
			timer.Reset(w.interval)
			select {
			case <-timer.C:
			case <-w.quit:
				if !timer.Stop() {
					<-timer.C
				}
				return
			}
		}
		w.flushAndSync()
	}
}

// flushAndSync makes every record appended so far durable and releases the
// waiters covered by it. It is the enforcement point of the fail-stop
// contract: once the writer is poisoned (a prior write, flush, or fsync
// failed) it never touches the file again — retrying fsync after a failure
// and acknowledging on success would trust pages the kernel may already
// have dropped — and instead fails every waiter with the original error.
func (w *Writer) flushAndSync() {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		w.failWaiters(err)
		return
	}
	seq := w.seq
	err := w.bw.Flush()
	if err != nil {
		w.err = fmt.Errorf("wal: flush failed (writer poisoned): %w", err)
		err = w.err
	}
	f := w.f
	w.mu.Unlock()

	if err == nil {
		var serr error
		if fault.Enabled() {
			serr = fault.Hit(FailpointSync)
		}
		if serr == nil && !w.noSync {
			serr = f.Sync()
		}
		if serr != nil {
			w.mu.Lock()
			if w.err == nil {
				w.err = fmt.Errorf("wal: fsync failed (writer poisoned): %w", serr)
			}
			err = w.err
			w.mu.Unlock()
		}
	}

	w.cmu.Lock()
	if err == nil {
		if seq > w.committed {
			w.committed = seq
		}
	} else if w.syncErr == nil {
		w.syncErr = err
	}
	w.cond.Broadcast()
	w.cmu.Unlock()
}

// failWaiters releases every durability waiter with err (first error
// sticks), without touching the file.
func (w *Writer) failWaiters(err error) {
	w.cmu.Lock()
	if w.syncErr == nil {
		w.syncErr = err
	}
	w.cond.Broadcast()
	w.cmu.Unlock()
}

// Err returns the writer's sticky error: nil while healthy, the original
// write/flush/fsync failure once poisoned.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Sync flushes and fsyncs everything appended so far, synchronously.
func (w *Writer) Sync() error {
	w.flushAndSync()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// Close stops the flusher, syncs outstanding records, and closes the file.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	w.mu.Unlock()

	close(w.quit)
	<-w.stopped
	w.flushAndSync()

	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Close(); err != nil && w.err == nil {
		w.err = err
	}
	// Wake any durable waiter stuck behind a failed sync.
	w.cmu.Lock()
	w.cond.Broadcast()
	w.cmu.Unlock()
	return w.err
}

// envelopeHeader is the first line of an envelope file: enough to validate
// the payload before trusting a byte of it.
type envelopeHeader struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	Length  int    `json:"length"`
	CRC32   uint32 `json:"crc32"`
}

// WriteEnvelope writes a checksummed snapshot envelope: a one-line JSON
// header carrying the format name, version, payload length, and payload
// CRC32, followed by the payload bytes. Readers can reject truncated or
// corrupted files before parsing the payload at all.
func WriteEnvelope(w io.Writer, format string, version int, payload []byte) error {
	if len(payload) > MaxEnvelope {
		return fmt.Errorf("wal: %s payload of %d bytes exceeds MaxEnvelope", format, len(payload))
	}
	hdr, err := json.Marshal(envelopeHeader{
		Format:  format,
		Version: version,
		Length:  len(payload),
		CRC32:   crc32.ChecksumIEEE(payload),
	})
	if err != nil {
		return fmt.Errorf("wal: encoding envelope header: %w", err)
	}
	hdr = append(hdr, '\n')
	if _, err := w.Write(hdr); err != nil {
		return fmt.Errorf("wal: writing envelope header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("wal: writing envelope payload: %w", err)
	}
	return nil
}

// ReadEnvelope reads an envelope written by WriteEnvelope, validating the
// format name, version bound, exact payload length, and CRC32. It returns
// the header's version and the payload bytes.
func ReadEnvelope(r io.Reader, format string, maxVersion int) (int, []byte, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	line, err := br.ReadBytes('\n')
	if err != nil {
		return 0, nil, fmt.Errorf("%w: truncated envelope header", ErrCorrupt)
	}
	var hdr envelopeHeader
	if err := json.Unmarshal(line, &hdr); err != nil {
		return 0, nil, fmt.Errorf("%w: bad envelope header: %v", ErrCorrupt, err)
	}
	if hdr.Format != format {
		return 0, nil, fmt.Errorf("%w: envelope format %q, want %q", ErrCorrupt, hdr.Format, format)
	}
	if hdr.Version < 1 || hdr.Version > maxVersion {
		return 0, nil, fmt.Errorf("%w: unsupported %s version %d", ErrCorrupt, format, hdr.Version)
	}
	if hdr.Length < 0 || hdr.Length > MaxEnvelope {
		return 0, nil, fmt.Errorf("%w: envelope length %d out of range", ErrCorrupt, hdr.Length)
	}
	payload := make([]byte, hdr.Length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return 0, nil, fmt.Errorf("%w: envelope payload truncated", ErrCorrupt)
	}
	if crc32.ChecksumIEEE(payload) != hdr.CRC32 {
		return 0, nil, fmt.Errorf("%w: envelope checksum mismatch", ErrCorrupt)
	}
	return hdr.Version, payload, nil
}
