package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// collect returns an apply func appending payload copies to out.
func collect(out *[][]byte) func([]byte) error {
	return func(p []byte) error {
		*out = append(*out, append([]byte(nil), p...))
		return nil
	}
}

func testOpts() Options { return Options{NoSync: true} }

func TestAppendScanRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, n, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("fresh log replayed %d records", n)
	}
	want := [][]byte{[]byte("one"), {}, []byte("three: \x00\xff binary")}
	for _, p := range want {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	records, _, err := ScanFile(path, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if records != len(want) {
		t.Fatalf("records = %d, want %d", records, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestReopenAppendsAfterExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendDurable([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var replayed [][]byte
	w2, n, err := Open(path, testOpts(), collect(&replayed))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || string(replayed[0]) != "a" {
		t.Fatalf("replayed %d records %q", n, replayed)
	}
	if _, err := w2.Append([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	records, _, err := ScanFile(path, collect(&got))
	if err != nil || records != 2 {
		t.Fatalf("records = %d, err = %v", records, err)
	}
	if string(got[0]) != "a" || string(got[1]) != "b" {
		t.Fatalf("got %q", got)
	}
}

// TestTornTailRecovery chops the file at every byte length between "just the
// header" and "full file": recovery must keep exactly the records whose
// frames survive intact and never error.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{[]byte("first-record"), []byte("second"), []byte("third-longer-record")}
	offsets := []int64{headerSize}
	off := int64(headerSize)
	for _, p := range payloads {
		if _, err := w.Append(p); err != nil {
			t.Fatal(err)
		}
		off += frameSize + int64(len(p))
		offsets = append(offsets, off)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := headerSize; cut <= len(full); cut++ {
		torn := filepath.Join(dir, "torn.log")
		if err := os.WriteFile(torn, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		records, validSize, err := ScanFile(torn, collect(&got))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecords := 0
		for i := 1; i < len(offsets); i++ {
			if offsets[i] <= int64(cut) {
				wantRecords = i
			}
		}
		if records != wantRecords {
			t.Fatalf("cut %d: records = %d, want %d", cut, records, wantRecords)
		}
		if validSize != offsets[wantRecords] {
			t.Fatalf("cut %d: validSize = %d, want %d", cut, validSize, offsets[wantRecords])
		}

		// Reopening must truncate the tail and accept fresh appends.
		var replayed [][]byte
		w2, n, err := Open(torn, testOpts(), collect(&replayed))
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if n != wantRecords {
			t.Fatalf("cut %d reopen: replayed %d, want %d", cut, n, wantRecords)
		}
		if _, err := w2.Append([]byte("appended-after-recovery")); err != nil {
			t.Fatal(err)
		}
		if err := w2.Close(); err != nil {
			t.Fatal(err)
		}
		var after [][]byte
		records2, _, err := ScanFile(torn, collect(&after))
		if err != nil || records2 != wantRecords+1 {
			t.Fatalf("cut %d after append: records = %d, err = %v", cut, records2, err)
		}
		if string(after[len(after)-1]) != "appended-after-recovery" {
			t.Fatalf("cut %d: last record %q", cut, after[len(after)-1])
		}
	}
}

func TestCorruptPayloadStopsScanSilently(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the second record's payload.
	secondPayload := headerSize + frameSize + len("record-0") + frameSize
	data[secondPayload] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	records, _, err := ScanFile(path, collect(&got))
	if err != nil {
		t.Fatal(err)
	}
	if records != 1 || string(got[0]) != "record-0" {
		t.Fatalf("records = %d %q, want just record-0", records, got)
	}
}

func TestBadHeaderIsError(t *testing.T) {
	dir := t.TempDir()
	cases := map[string][]byte{
		"empty":       {},
		"short":       []byte("LWA"),
		"bad-magic":   append([]byte("NOPE"), 1, 0, 0, 0),
		"bad-version": append([]byte("LWAL"), 99, 0, 0, 0),
	}
	for name, content := range cases {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, content, 0o644); err != nil {
			t.Fatal(err)
		}
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = Scan(f, func([]byte) error { return nil })
		f.Close()
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestApplyErrorPropagates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	_, _, err = ScanFile(path, func([]byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize record accepted")
	}
}

func TestImpossibleLengthTreatedAsTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]byte("good")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [frameSize]byte
	binary.LittleEndian.PutUint32(frame[0:4], MaxRecord+7)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(nil))
	if _, err := f.Write(frame[:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	records, _, err := ScanFile(path, func([]byte) error { return nil })
	if err != nil || records != 1 {
		t.Fatalf("records = %d, err = %v", records, err)
	}
}

// TestConcurrentDurableAppends exercises the group-commit path under -race:
// many goroutines appending durably must all complete and every record must
// survive a rescan.
func TestConcurrentDurableAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, Options{NoSync: true}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	const goroutines, each = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := w.AppendDurable([]byte(fmt.Sprintf("g%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records, _, err := ScanFile(path, func([]byte) error { return nil })
	if err != nil || records != goroutines*each {
		t.Fatalf("records = %d, err = %v, want %d", records, err, goroutines*each)
	}
}

// TestOpenTreatsShortFileAsFresh: a file too short to hold the header —
// power loss during log creation — cannot contain acknowledged records,
// so Open must recover it as a fresh log rather than failing forever.
func TestOpenTreatsShortFileAsFresh(t *testing.T) {
	for _, content := range [][]byte{{}, []byte("LWA")} {
		path := filepath.Join(t.TempDir(), "wal.log")
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		w, n, err := Open(path, testOpts(), func([]byte) error { return nil })
		if err != nil {
			t.Fatalf("short file (%d bytes) not recovered: %v", len(content), err)
		}
		if n != 0 {
			t.Fatalf("short file replayed %d records", n)
		}
		if _, err := w.Append([]byte("fresh")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		records, _, err := ScanFile(path, func([]byte) error { return nil })
		if err != nil || records != 1 {
			t.Fatalf("after recovery: records = %d, err = %v", records, err)
		}
	}
}

func TestCreateRefusesExisting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := Create(path, testOpts())
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := Create(path, testOpts()); err == nil {
		t.Fatal("Create over an existing file succeeded")
	}
}

func TestEnvelopeRoundTripAndValidation(t *testing.T) {
	payload := []byte(`{"hello":"world"}`)
	var buf bytes.Buffer
	if err := WriteEnvelope(&buf, "test-format", 3, payload); err != nil {
		t.Fatal(err)
	}
	full := append([]byte(nil), buf.Bytes()...)

	v, got, err := ReadEnvelope(bytes.NewReader(full), "test-format", 3)
	if err != nil || v != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("ReadEnvelope = %d, %q, %v", v, got, err)
	}

	// Wrong format name.
	if _, _, err := ReadEnvelope(bytes.NewReader(full), "other", 3); !errors.Is(err, ErrCorrupt) {
		t.Errorf("wrong format: err = %v", err)
	}
	// Version above the reader's maximum.
	if _, _, err := ReadEnvelope(bytes.NewReader(full), "test-format", 2); !errors.Is(err, ErrCorrupt) {
		t.Errorf("future version: err = %v", err)
	}
	// Truncated payload: every prefix must fail cleanly, never panic.
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := ReadEnvelope(bytes.NewReader(full[:cut]), "test-format", 3); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Corrupted payload byte: CRC must catch it.
	bad := append([]byte(nil), full...)
	bad[len(bad)-2] ^= 0x01
	if _, _, err := ReadEnvelope(bytes.NewReader(bad), "test-format", 3); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt payload: err = %v", err)
	}
}

// TestAppendBatchBitIdenticalToSequential is the on-disk half of the
// batching contract: a batch-appended log must be byte-for-byte identical
// to the same payloads appended one at a time.
func TestAppendBatchBitIdenticalToSequential(t *testing.T) {
	dir := t.TempDir()
	payloads := [][]byte{[]byte("one"), {}, []byte("three: \x00\xff binary"),
		bytes.Repeat([]byte{0xab}, 1000)}

	seqPath := filepath.Join(dir, "seq.log")
	ws, _, err := Open(seqPath, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range payloads {
		if _, err := ws.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := ws.Close(); err != nil {
		t.Fatal(err)
	}

	batchPath := filepath.Join(dir, "batch.log")
	wb, _, err := Open(batchPath, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	last, err := wb.AppendBatch(payloads)
	if err != nil {
		t.Fatal(err)
	}
	if last != uint64(len(payloads)) {
		t.Fatalf("AppendBatch last seq = %d, want %d", last, len(payloads))
	}
	if err := wb.Close(); err != nil {
		t.Fatal(err)
	}

	seqBytes, err := os.ReadFile(seqPath)
	if err != nil {
		t.Fatal(err)
	}
	batchBytes, err := os.ReadFile(batchPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqBytes, batchBytes) {
		t.Fatalf("batched log differs from sequential log (%d vs %d bytes)",
			len(batchBytes), len(seqBytes))
	}

	// And the scanner sees the same records back.
	var got [][]byte
	records, _, err := ScanFile(batchPath, collect(&got))
	if err != nil || records != len(payloads) {
		t.Fatalf("records = %d, err = %v", records, err)
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

// TestAppendBatchDurable interleaves batch and single durable appends from
// concurrent goroutines; every record must be on disk afterwards and
// sequence numbers must stay consistent.
func TestAppendBatchDurable(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	const writers, batches, batchLen = 4, 8, 16
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < batches; i++ {
				batch := make([][]byte, batchLen)
				for j := range batch {
					batch[j] = []byte(fmt.Sprintf("w%d-b%d-r%d", g, i, j))
				}
				if err := w.AppendBatchDurable(batch); err != nil {
					t.Error(err)
					return
				}
				if err := w.AppendDurable([]byte(fmt.Sprintf("w%d-s%d", g, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records, _, err := ScanFile(path, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if want := writers * batches * (batchLen + 1); records != want {
		t.Fatalf("records = %d, want %d", records, want)
	}
}

// TestAppendBatchEdgeCases: empty batches are no-ops, oversized payloads
// fail the whole batch before any byte reaches the log, and the writer
// stays usable afterwards.
func TestAppendBatchEdgeCases(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, _, err := Open(path, testOpts(), func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if seq, err := w.AppendBatch(nil); err != nil || seq != 0 {
		t.Fatalf("empty batch: seq = %d, err = %v", seq, err)
	}
	if err := w.AppendBatchDurable([][]byte{}); err != nil {
		t.Fatalf("empty durable batch: %v", err)
	}
	huge := make([]byte, MaxRecord+1)
	if _, err := w.AppendBatch([][]byte{[]byte("ok"), huge}); err == nil {
		t.Fatal("oversized batch accepted")
	}
	if _, err := w.AppendBatch([][]byte{[]byte("still works")}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	records, _, err := ScanFile(path, func([]byte) error { return nil })
	if err != nil || records != 1 {
		t.Fatalf("records = %d, err = %v (oversized batch must leave no bytes)", records, err)
	}
}
