// Package lightor is an implicit-crowdsourcing highlight extractor for
// recorded live videos, reproducing "Towards Extracting Highlights From
// Recorded Live Videos: An Implicit Crowdsourcing Approach" (Jiang, Qu,
// Wang, Wang, Zheng — ICDE 2020).
//
// LIGHTOR needs no video decoding and no GPUs. It mines two free signals a
// live-streaming platform already has:
//
//   - time-stamped chat: the Highlight Initializer scores 25-second chat
//     windows with three generic features (message number, length,
//     similarity), picks the top-k, and shifts each window's message peak
//     back by a learned ~25 s reaction delay to place a "red dot";
//   - viewer interactions: the Highlight Extractor watches how viewers
//     play/seek around each red dot, filters the noise, classifies the dot
//     as usable (Type II) or overshooting (Type I), and aggregates play
//     boundaries with medians, iterating until the dot converges.
//
// # Quick start
//
//	det, err := lightor.New(lightor.Options{})
//	if err != nil { ... }
//	if err := det.Train(labeled); err != nil { ... }
//	dots, err := det.DetectRedDots(messages, duration, 5)
//
// # Streaming
//
// Streaming is the primary code path: OnlineSession consumes live chat
// message by message and emits red dots while the broadcast is still
// running, and the internal session engine multiplexes many such sessions
// over a worker pool for platform deployments (see cmd/lightor-server's
// /api/live endpoints). Batch extraction is replay over the same engine:
// ExtractHighlights streams the recorded log through a session and then
// refines every red dot in parallel, so refining k dots costs roughly one
// dot's latency instead of k.
//
// See examples/ for end-to-end programs, including the full crowd
// refinement loop and the browser-extension web service.
package lightor

import (
	"context"
	"fmt"
	"io"
	"sync"

	"lightor/internal/chat"
	"lightor/internal/core"
	"lightor/internal/engine"
	"lightor/internal/play"
)

// Re-exported domain types. These alias the engine's own types, so values
// flow between the public API and the internal packages without copying.
type (
	// Message is one time-stamped chat message.
	Message = chat.Message
	// Interval is a [start, end] span in video seconds.
	Interval = core.Interval
	// RedDot is a predicted approximate highlight position.
	RedDot = core.RedDot
	// Highlight is an extracted highlight: red dot, refined boundary, and
	// the refinement trace.
	Highlight = core.HighlightResult
	// TrainingVideo is a labeled video for Train.
	TrainingVideo = core.TrainingVideo
	// Play is one uninterrupted viewing span by one user.
	Play = play.Play
	// Event is a raw player interaction (play/pause/seek/stop).
	Event = play.Event
	// InteractionSource supplies fresh play data around a red dot.
	InteractionSource = core.InteractionSource
	// FeatureSet selects the prediction model's features.
	FeatureSet = core.FeatureSet
)

// Feature set constants (Figure 6a's ablation axes).
const (
	FeaturesNum    = core.FeaturesNum
	FeaturesNumLen = core.FeaturesNumLen
	FeaturesFull   = core.FeaturesFull
)

// Event type constants for building interaction streams.
const (
	EventPlay  = play.EventPlay
	EventPause = play.EventPause
	EventSeek  = play.EventSeek
	EventStop  = play.EventStop
)

// Sessionize converts raw player events into play records.
func Sessionize(events []Event) []Play { return play.Sessionize(events) }

// ReadEventsJSONL parses a JSON-lines interaction-event log (the format
// the browser extension reports).
func ReadEventsJSONL(r io.Reader) ([]Event, error) { return play.ReadEventsJSONL(r) }

// WriteEventsJSONL writes interaction events as JSON lines.
func WriteEventsJSONL(w io.Writer, events []Event) error {
	return play.WriteEventsJSONL(w, events)
}

// StaticPlays wraps an already-collected batch of play records as an
// InteractionSource: every refinement iteration sees the same snapshot.
// Use it to refine highlights from logged interaction data; live systems
// implement InteractionSource against their interaction log instead.
func StaticPlays(plays []Play) InteractionSource { return staticSource(plays) }

type staticSource []Play

func (s staticSource) Interactions(dot float64) []Play { return s }

// ReadChatJSONL parses a JSON-lines chat log (one message per line).
func ReadChatJSONL(r io.Reader) ([]Message, error) {
	log, err := chat.ReadJSONL(r)
	if err != nil {
		return nil, err
	}
	return log.Messages(), nil
}

// ReadChatIRC parses the plain-text "[h:mm:ss] <user> message" export
// format produced by common VOD chat downloaders.
func ReadChatIRC(r io.Reader) ([]Message, error) {
	log, err := chat.ReadIRCText(r)
	if err != nil {
		return nil, err
	}
	return log.Messages(), nil
}

// WriteChatJSONL writes messages as a JSON-lines chat log.
func WriteChatJSONL(w io.Writer, messages []Message) error {
	return chat.WriteJSONL(w, chat.NewLog(messages))
}

// Options configures a Detector. The zero value uses the paper's defaults
// everywhere (25 s windows, δ = 120 s separation, full feature set,
// Δ = 60 s play association, m = 20 s move-back, ε = 3 s convergence).
type Options struct {
	// WindowSize is the chat sliding-window length in seconds.
	WindowSize float64
	// WindowStride is the window stride (= WindowSize for the paper's
	// non-overlapping tiling).
	WindowStride float64
	// MinSeparation is the minimum distance between two red dots (δ).
	MinSeparation float64
	// Features selects the prediction model's feature subset.
	Features FeatureSet
	// Delta is the play-association half-window around a red dot.
	Delta float64
	// MoveBack is how far a Type I red dot moves backward per iteration.
	MoveBack float64
	// Epsilon is the convergence threshold on red-dot movement.
	Epsilon float64
	// MaxIterations bounds the refinement loop.
	MaxIterations int
}

// Detector is the end-to-end LIGHTOR pipeline. A Detector owns at most one
// session engine, built lazily on the first ExtractHighlights call and
// reused by every subsequent one, so repeated batch extractions share a
// worker pool instead of spinning one up per call; Close releases it.
type Detector struct {
	init *core.Initializer
	ext  *core.Extractor

	mu  sync.Mutex
	eng *engine.Engine
}

// New creates a Detector with the given options (zero values mean paper
// defaults). It returns an error for options that are out of range —
// negative or non-finite window sizes, strides, separations, or refinement
// tunables — instead of letting them silently produce degenerate tilings.
func New(opts Options) (*Detector, error) {
	icfg := core.InitializerConfig{
		WindowSize:    opts.WindowSize,
		WindowStride:  opts.WindowStride,
		MinSeparation: opts.MinSeparation,
		Features:      opts.Features,
	}
	init, err := core.NewInitializer(icfg)
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	ecfg := core.ExtractorConfig{
		Delta:         opts.Delta,
		MoveBack:      opts.MoveBack,
		Epsilon:       opts.Epsilon,
		MaxIterations: opts.MaxIterations,
	}
	ext, err := core.NewExtractor(ecfg, nil)
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	return &Detector{
		init: init,
		ext:  ext,
	}, nil
}

// Windows tiles a video's chat into the detector's sliding windows.
// Training labels must align with this tiling.
func (d *Detector) Windows(messages []Message, duration float64) []Interval {
	ws := d.init.Windows(chat.NewLog(messages), duration)
	out := make([]Interval, len(ws))
	for i, w := range ws {
		out[i] = Interval{Start: w.Start, End: w.End}
	}
	return out
}

// NewTrainingVideo assembles a labeled video: labels carry 1 for each
// window (per Windows' tiling) whose chat discusses a highlight, and
// highlights are the ground-truth spans.
func (d *Detector) NewTrainingVideo(messages []Message, duration float64, labels []int, highlights []Interval) TrainingVideo {
	return TrainingVideo{
		Log:        chat.NewLog(messages),
		Duration:   duration,
		Labels:     labels,
		Highlights: highlights,
	}
}

// Train fits the prediction model and the reaction-delay constant on
// labeled videos. One labeled video is typically enough (Figure 6b).
func (d *Detector) Train(videos []TrainingVideo) error {
	return d.init.Train(videos)
}

// DelaySeconds returns the learned reaction delay c (time_start =
// time_peak − c). Zero before Train.
func (d *Detector) DelaySeconds() int { return d.init.DelayC() }

// DetectRedDots predicts the top-k approximate highlight positions from
// chat alone (the Highlight Initializer, Algorithm 1).
func (d *Detector) DetectRedDots(messages []Message, duration float64, k int) ([]RedDot, error) {
	return d.init.Detect(chat.NewLog(messages), duration, k)
}

// RefineHighlight runs the Highlight Extractor (Algorithm 2) on one red
// dot, pulling fresh interaction data from source each iteration until the
// dot converges.
func (d *Detector) RefineHighlight(dot RedDot, source InteractionSource) Highlight {
	seed := Interval{Start: dot.Time, End: dot.Time + d.ext.Config().DefaultSpan}
	boundary, trace := d.ext.Refine(seed, source)
	return Highlight{Dot: dot, Boundary: boundary, Trace: trace}
}

// ExtractHighlights runs the full pipeline: red dots from chat, then
// iterative boundary refinement against the interaction source. It routes
// through the concurrent session engine — the recorded log replays through
// a streaming session and the k red dots refine in parallel — while
// keeping the exact output (dots, order, and boundaries) of the original
// serial workflow. Calls into source never overlap (it need not be safe
// for concurrent use), but the parallel fan-out interleaves them across
// dots in unspecified order; a stateful source sees a different call
// sequence than the old serial loop did.
func (d *Detector) ExtractHighlights(messages []Message, duration float64, k int, source InteractionSource) ([]Highlight, error) {
	eng, err := d.engine()
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	results, err := eng.ExtractHighlights(context.Background(), chat.NewLog(messages), duration, k, source)
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	return results, nil
}

// engine returns the detector's session engine, building it on first use.
// The engine (and its worker pools) persists across calls so repeated batch
// extractions don't pay spin-up and tear-down each time; Close releases it.
func (d *Detector) engine() (*engine.Engine, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.eng == nil {
		eng, err := engine.New(d.init, d.ext, engine.Config{})
		if err != nil {
			return nil, err
		}
		d.eng = eng
	}
	return d.eng, nil
}

// Close drains and releases the detector's session engine, if one was ever
// built. The Detector remains usable: a later ExtractHighlights builds a
// fresh engine. Close is idempotent and safe to call on a Detector that
// never extracted anything.
func (d *Detector) Close() error {
	d.mu.Lock()
	eng := d.eng
	d.eng = nil
	d.mu.Unlock()
	if eng == nil {
		return nil
	}
	if err := eng.Close(context.Background()); err != nil {
		return fmt.Errorf("lightor: %w", err)
	}
	return nil
}

// OnlineSession is a live-stream detection session: feed it chat messages
// as they arrive and it emits red dots while the broadcast is still
// running. See core.OnlineDetector for the finalization semantics.
type OnlineSession struct {
	od *core.OnlineDetector
}

// NewOnlineSession starts a live detection session on a trained detector.
// threshold ≤ 0 defaults to 0.5.
func (d *Detector) NewOnlineSession(threshold float64) (*OnlineSession, error) {
	od, err := core.NewOnlineDetector(d.init, threshold)
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	return &OnlineSession{od: od}, nil
}

// SetWarmup overrides the warm-up horizon in seconds (default 300; 0
// disables it). Call before the first Feed.
func (s *OnlineSession) SetWarmup(seconds float64) { s.od.SetWarmup(seconds) }

// Feed consumes the next live chat message (timestamps must be
// non-decreasing) and returns any red dots finalized by it.
func (s *OnlineSession) Feed(m Message) ([]RedDot, error) { return s.od.Feed(m) }

// Advance moves the stream clock during quiet periods and returns any
// newly finalized dots.
func (s *OnlineSession) Advance(now float64) []RedDot { return s.od.Advance(now) }

// Flush ends the stream and finalizes all remaining windows.
func (s *OnlineSession) Flush() []RedDot { return s.od.Flush() }

// Emitted returns every dot emitted so far, in emission order.
func (s *OnlineSession) Emitted() []RedDot { return s.od.Emitted() }

// Save persists the trained detector model as JSON.
func (d *Detector) Save(w io.Writer) error { return d.init.Save(w) }

// Load reads a detector model saved by Save. The extractor uses paper
// defaults; pass opts to override them.
func Load(r io.Reader, opts Options) (*Detector, error) {
	init, err := core.LoadInitializer(r)
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	ecfg := core.ExtractorConfig{
		Delta:         opts.Delta,
		MoveBack:      opts.MoveBack,
		Epsilon:       opts.Epsilon,
		MaxIterations: opts.MaxIterations,
	}
	ext, err := core.NewExtractor(ecfg, nil)
	if err != nil {
		return nil, fmt.Errorf("lightor: %w", err)
	}
	return &Detector{init: init, ext: ext}, nil
}
