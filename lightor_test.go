package lightor_test

import (
	"bytes"
	"strings"
	"testing"

	"lightor"
	"lightor/internal/sim"
	"lightor/internal/stats"
)

// mustNew builds a Detector or fails the test — New validates options and
// returns an error since PR 2.
func mustNew(t testing.TB, opts lightor.Options) *lightor.Detector {
	t.Helper()
	det, err := lightor.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return det
}

// publicTrainingData builds labeled videos through the public API only.
func publicTrainingData(t *testing.T, det *lightor.Detector, data []sim.VideoData) []lightor.TrainingVideo {
	t.Helper()
	out := make([]lightor.TrainingVideo, len(data))
	for i, d := range data {
		msgs := d.Chat.Log.Messages()
		windows := det.Windows(msgs, d.Video.Duration)
		labels := make([]int, len(windows))
		for wi, w := range windows {
			for _, b := range d.Chat.Bursts {
				if b.Peak >= w.Start && b.Peak < w.End {
					labels[wi] = 1
					break
				}
			}
		}
		out[i] = det.NewTrainingVideo(msgs, d.Video.Duration, labels, d.Video.Highlights)
	}
	return out
}

func TestPublicAPIEndToEnd(t *testing.T) {
	rng := stats.NewRand(77)
	data := sim.GenerateDataset(rng, sim.Dota2Profile(), 3)

	det := mustNew(t, lightor.Options{})
	if err := det.Train(publicTrainingData(t, det, data[:2])); err != nil {
		t.Fatal(err)
	}
	if c := det.DelaySeconds(); c < 10 || c > 40 {
		t.Errorf("learned delay = %d, want ≈25", c)
	}

	target := data[2]
	dots, err := det.DetectRedDots(target.Chat.Log.Messages(), target.Video.Duration, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(dots) == 0 {
		t.Fatal("no red dots")
	}

	src := &simSource{rng: stats.NewRand(5), video: target.Video}
	highlights, err := det.ExtractHighlights(target.Chat.Log.Messages(), target.Video.Duration, 5, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(highlights) == 0 {
		t.Fatal("no highlights extracted")
	}
	for _, h := range highlights {
		if h.Boundary.End <= h.Boundary.Start {
			t.Errorf("degenerate boundary %v", h.Boundary)
		}
	}
}

// TestOptionsValidation covers the PR-2 satellite: out-of-range options
// must be rejected by New with a clear error instead of silently producing
// NaN-ish tilings downstream.
func TestOptionsValidation(t *testing.T) {
	bad := []lightor.Options{
		{WindowSize: -25},
		{WindowStride: -1},
		{MinSeparation: -120},
		{Delta: -60},
		{MoveBack: -20},
		{MaxIterations: -3},
	}
	for i, opts := range bad {
		if _, err := lightor.New(opts); err == nil {
			t.Errorf("case %d: invalid options %+v accepted", i, opts)
		}
	}
	if _, err := lightor.New(lightor.Options{}); err != nil {
		t.Errorf("zero options rejected: %v", err)
	}
}

// TestDetectorEngineReuse covers the PR-2 satellite: repeated batch
// extractions share one lazily built session engine instead of spinning a
// worker pool up and down per call, results stay identical run over run,
// and Close releases the engine while leaving the Detector usable.
func TestDetectorEngineReuse(t *testing.T) {
	rng := stats.NewRand(83)
	data := sim.GenerateDataset(rng, sim.Dota2Profile(), 2)
	det := mustNew(t, lightor.Options{})
	if err := det.Train(publicTrainingData(t, det, data[:1])); err != nil {
		t.Fatal(err)
	}
	target := data[1]
	src := &simSource{rng: stats.NewRand(9), video: target.Video}

	first, err := det.ExtractHighlights(target.Chat.Log.Messages(), target.Video.Duration, 3, src)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		got, err := det.ExtractHighlights(target.Chat.Log.Messages(), target.Video.Duration, 3, src)
		if err != nil {
			t.Fatalf("repeat %d: %v", i, err)
		}
		if len(got) != len(first) {
			t.Fatalf("repeat %d: %d highlights, first run had %d", i, len(got), len(first))
		}
		for j := range got {
			if got[j].Dot != first[j].Dot {
				t.Fatalf("repeat %d: dot %d moved: %+v vs %+v", i, j, got[j].Dot, first[j].Dot)
			}
		}
	}

	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
	if err := det.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	// The detector rebuilds its engine after Close.
	if _, err := det.ExtractHighlights(target.Chat.Log.Messages(), target.Video.Duration, 3, src); err != nil {
		t.Fatalf("extraction after Close: %v", err)
	}
	if err := det.Close(); err != nil {
		t.Fatal(err)
	}
}

type simSource struct {
	rng   interface{ Int63() int64 }
	video sim.Video
}

func (s *simSource) Interactions(dot float64) []lightor.Play {
	h, ok := sim.NearestHighlight(s.video, dot)
	if !ok {
		return nil
	}
	return sim.SimulateCrowd(stats.NewRand(s.rng.Int63()), 10, s.video, dot, h, sim.DefaultViewerBehavior())
}

func TestPublicSaveLoad(t *testing.T) {
	rng := stats.NewRand(78)
	data := sim.GenerateDataset(rng, sim.Dota2Profile(), 2)
	det := mustNew(t, lightor.Options{})
	if err := det.Train(publicTrainingData(t, det, data[:1])); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := det.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := lightor.Load(&buf, lightor.Options{})
	if err != nil {
		t.Fatal(err)
	}
	msgs := data[1].Chat.Log.Messages()
	a, err := det.DetectRedDots(msgs, data[1].Video.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loaded.DetectRedDots(msgs, data[1].Video.Duration, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("detections differ after load: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Time != b[i].Time {
			t.Errorf("dot %d: %g vs %g", i, a[i].Time, b[i].Time)
		}
	}
}

func TestChatCodecRoundTripPublic(t *testing.T) {
	in := []lightor.Message{
		{Time: 1, User: "a", Text: "nice kill"},
		{Time: 2, User: "b", Text: "wow"},
	}
	var buf bytes.Buffer
	if err := lightor.WriteChatJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := lightor.ReadChatJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round trip = %v", out)
	}
}

func TestSessionizePublic(t *testing.T) {
	events := []lightor.Event{
		{User: "u", Seq: 0, Type: lightor.EventPlay, Pos: 10},
		{User: "u", Seq: 1, Type: lightor.EventStop, Pos: 30},
	}
	plays := lightor.Sessionize(events)
	if len(plays) != 1 || plays[0].Start != 10 || plays[0].End != 30 {
		t.Errorf("plays = %v", plays)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := lightor.Load(bytes.NewReader([]byte("not a model")), lightor.Options{}); err == nil {
		t.Error("garbage model accepted")
	}
}

func TestStaticPlaysSource(t *testing.T) {
	plays := []lightor.Play{{User: "u", Start: 1, End: 5}}
	src := lightor.StaticPlays(plays)
	got := src.Interactions(3)
	if len(got) != 1 || got[0] != plays[0] {
		t.Errorf("Interactions = %v", got)
	}
	// Same snapshot regardless of the dot.
	if len(src.Interactions(999)) != 1 {
		t.Error("snapshot varies with dot")
	}
}

func TestEventsCodecPublic(t *testing.T) {
	in := []lightor.Event{
		{User: "u", Seq: 0, Type: lightor.EventPlay, Pos: 10},
		{User: "u", Seq: 1, Type: lightor.EventSeek, Pos: 25},
	}
	var buf bytes.Buffer
	if err := lightor.WriteEventsJSONL(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := lightor.ReadEventsJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || out[1] != in[1] {
		t.Errorf("round trip = %v", out)
	}
}

func TestReadChatIRCPublic(t *testing.T) {
	in := "[0:00:05] <fan> nice kill\n[0:01:00] <other> wow\n"
	msgs, err := lightor.ReadChatIRC(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 2 || msgs[0].Time != 5 || msgs[1].User != "other" {
		t.Errorf("messages = %v", msgs)
	}
	if _, err := lightor.ReadChatIRC(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestOnlineSessionPublic(t *testing.T) {
	rng := stats.NewRand(80)
	data := sim.GenerateDataset(rng, sim.Dota2Profile(), 3)
	det := mustNew(t, lightor.Options{})
	if err := det.Train(publicTrainingData(t, det, data[:2])); err != nil {
		t.Fatal(err)
	}

	// Untrained detectors cannot go live.
	if _, err := mustNew(t, lightor.Options{}).NewOnlineSession(0.5); err == nil {
		t.Error("untrained online session accepted")
	}

	session, err := det.NewOnlineSession(0.5)
	if err != nil {
		t.Fatal(err)
	}
	session.SetWarmup(120)
	target := data[2]
	for _, m := range target.Chat.Log.Messages() {
		if _, err := session.Feed(m); err != nil {
			t.Fatal(err)
		}
	}
	session.Advance(target.Video.Duration)
	session.Flush()
	if len(session.Emitted()) == 0 {
		t.Error("online session emitted nothing")
	}
}

func TestDetectorWindowsPublic(t *testing.T) {
	det := mustNew(t, lightor.Options{WindowSize: 25, WindowStride: 25})
	msgs := []lightor.Message{{Time: 10, Text: "a"}, {Time: 60, Text: "b"}}
	windows := det.Windows(msgs, 100)
	if len(windows) != 4 {
		t.Fatalf("windows = %d, want 4", len(windows))
	}
	if windows[0].Start != 0 || windows[0].End != 25 {
		t.Errorf("first window = %v", windows[0])
	}
}

func TestRefineHighlightPublic(t *testing.T) {
	rng := stats.NewRand(79)
	data := sim.GenerateDataset(rng, sim.Dota2Profile(), 2)
	det := mustNew(t, lightor.Options{})
	if err := det.Train(publicTrainingData(t, det, data[:1])); err != nil {
		t.Fatal(err)
	}
	target := data[1]
	dots, err := det.DetectRedDots(target.Chat.Log.Messages(), target.Video.Duration, 1)
	if err != nil || len(dots) == 0 {
		t.Fatalf("detect: %v (%d dots)", err, len(dots))
	}
	src := &simSource{rng: stats.NewRand(6), video: target.Video}
	h := det.RefineHighlight(dots[0], src)
	if len(h.Trace) == 0 {
		t.Error("no refinement trace")
	}
}
